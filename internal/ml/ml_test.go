package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthLinear builds y = 3x₀ − 2x₁ + 0.5x₂ + 7 (+ optional noise).
func synthLinear(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		r := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		x[i] = r
		y[i] = 3*r[0] - 2*r[1] + 0.5*r[2] + 7 + rng.NormFloat64()*noise
	}
	return x, y
}

// synthNonlinear builds y = sin(x₀) + x₁² / 20 + step(x₂).
func synthNonlinear(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		r := []float64{rng.Float64() * 6, rng.Float64()*10 - 5, rng.Float64()}
		x[i] = r
		step := 0.0
		if r[2] > 0.5 {
			step = 2
		}
		y[i] = math.Sin(r[0]) + r[1]*r[1]/20 + step
	}
	return x, y
}

func fitPredictR2(t *testing.T, r Regressor, x [][]float64, y []float64, xt [][]float64, yt []float64) float64 {
	t.Helper()
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return R2(PredictAll(r, xt), yt)
}

func TestRidgeRecoversLinear(t *testing.T) {
	x, y := synthLinear(200, 0, 1)
	xt, yt := synthLinear(50, 0, 2)
	if r2 := fitPredictR2(t, NewRidge(1e-6), x, y, xt, yt); r2 < 0.9999 {
		t.Errorf("ridge R² = %f", r2)
	}
}

func TestBayesianRidgeOnNoisyLinear(t *testing.T) {
	x, y := synthLinear(300, 2, 3)
	xt, yt := synthLinear(80, 0, 4)
	if r2 := fitPredictR2(t, NewBayesianRidge(), x, y, xt, yt); r2 < 0.98 {
		t.Errorf("bayesian ridge R² = %f", r2)
	}
}

func TestLassoShrinksIrrelevantFeature(t *testing.T) {
	// y depends only on x₀; x₁, x₂ are noise → Lasso should nearly zero them.
	rng := rand.New(rand.NewSource(5))
	n := 300
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		y[i] = 4 * x[i][0]
	}
	l := NewLasso(1.0, 2000)
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.w[1]) > 0.5 || math.Abs(l.w[2]) > 0.5 {
		t.Errorf("irrelevant weights not shrunk: %v", l.w)
	}
	if math.Abs(l.w[0]) < 1 {
		t.Errorf("relevant weight vanished: %v", l.w)
	}
}

func TestLARSMatchesLeastSquaresAtFullPath(t *testing.T) {
	x, y := synthLinear(150, 0, 6)
	xt, yt := synthLinear(40, 0, 7)
	if r2 := fitPredictR2(t, NewLARS(0), x, y, xt, yt); r2 < 0.999 {
		t.Errorf("full-path LARS R² = %f", r2)
	}
}

func TestLARSEarlyStopSparse(t *testing.T) {
	x, y := synthLinear(150, 0, 8)
	l := NewLARS(1)
	if err := l.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, w := range l.w {
		if w != 0 {
			nonzero++
		}
	}
	if nonzero > 1 {
		t.Errorf("1-step LARS should keep ≤1 active feature, got %d", nonzero)
	}
}

func TestPLSOnLinear(t *testing.T) {
	x, y := synthLinear(200, 1, 9)
	xt, yt := synthLinear(60, 0, 10)
	if r2 := fitPredictR2(t, NewPLS(2), x, y, xt, yt); r2 < 0.95 {
		t.Errorf("PLS R² = %f", r2)
	}
}

func TestDecisionTreeMemorizesTraining(t *testing.T) {
	x, y := synthNonlinear(200, 11)
	tr := NewDecisionTree(0, 2)
	if err := tr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(PredictAll(tr, x), y); r2 < 0.999999 {
		t.Errorf("unbounded tree should fit training exactly, R² = %f", r2)
	}
}

func TestDecisionTreeGeneralizesStep(t *testing.T) {
	x, y := synthNonlinear(500, 12)
	xt, yt := synthNonlinear(150, 13)
	if r2 := fitPredictR2(t, NewDecisionTree(0, 2), x, y, xt, yt); r2 < 0.8 {
		t.Errorf("tree test R² = %f", r2)
	}
}

func TestRandomForestBeatsSingleTreeOnNoise(t *testing.T) {
	x, y := synthNonlinear(400, 14)
	// Add label noise.
	rng := rand.New(rand.NewSource(15))
	yn := append([]float64(nil), y...)
	for i := range yn {
		yn[i] += rng.NormFloat64() * 0.3
	}
	xt, yt := synthNonlinear(150, 16)
	tree := fitPredictR2(t, NewDecisionTree(0, 2), x, yn, xt, yt)
	forest := fitPredictR2(t, NewRandomForest(30, 1), x, yn, xt, yt)
	if forest <= tree {
		t.Errorf("forest R² %f should beat tree R² %f on noisy labels", forest, tree)
	}
}

func TestRandomForestDeterministicInSeed(t *testing.T) {
	x, y := synthNonlinear(150, 17)
	f1 := NewRandomForest(10, 42)
	f2 := NewRandomForest(10, 42)
	if err := f1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := x[i]
		if f1.Predict(q) != f2.Predict(q) {
			t.Fatal("same seed, different predictions")
		}
	}
}

func TestAdaBoostR2(t *testing.T) {
	x, y := synthNonlinear(400, 18)
	xt, yt := synthNonlinear(120, 19)
	if r2 := fitPredictR2(t, NewAdaBoostR2(30, 1), x, y, xt, yt); r2 < 0.75 {
		t.Errorf("AdaBoost R² = %f", r2)
	}
}

func TestGradientBoosting(t *testing.T) {
	x, y := synthNonlinear(400, 20)
	xt, yt := synthNonlinear(120, 21)
	if r2 := fitPredictR2(t, NewGradientBoosting(100, 0.1, 3, 1), x, y, xt, yt); r2 < 0.9 {
		t.Errorf("gradient boosting R² = %f", r2)
	}
}

func TestKNN(t *testing.T) {
	x, y := synthNonlinear(600, 22)
	xt, yt := synthNonlinear(100, 23)
	// Raw (unscaled) distances under-weight the step feature, so the bar
	// is modest — the same effect keeps kNN mid-pack in Table 3.
	if r2 := fitPredictR2(t, NewKNN(5), x, y, xt, yt); r2 < 0.6 {
		t.Errorf("kNN R² = %f", r2)
	}
	// k=1 memorizes.
	k1 := NewKNN(1)
	if err := k1.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(PredictAll(k1, x), y); r2 < 0.999999 {
		t.Errorf("1-NN train R² = %f", r2)
	}
}

func TestMLPOnLinear(t *testing.T) {
	x, y := synthLinear(300, 0.5, 24)
	xt, yt := synthLinear(80, 0, 25)
	if r2 := fitPredictR2(t, NewMLP([]int{32}, 120, 1), x, y, xt, yt); r2 < 0.95 {
		t.Errorf("MLP R² = %f", r2)
	}
}

func TestGaussianProcessInterpolates(t *testing.T) {
	// GP with near-zero noise reproduces training targets on scaled
	// features where the kernel is informative.
	rng := rand.New(rand.NewSource(26))
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 3, rng.Float64() * 3}
		y[i] = math.Sin(x[i][0]) * math.Cos(x[i][1])
	}
	gp := NewGaussianProcess(1.0, 1e-10)
	if err := gp.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(PredictAll(gp, x), y); r2 < 0.999 {
		t.Errorf("GP train R² = %f (should interpolate)", r2)
	}
}

func TestKernelRidgeCollapsesOnRawScales(t *testing.T) {
	// The paper feeds raw features: squared distances ≫ 1/γ make the RBF
	// kernel vanish and the model predicts ≈0 — its Table 3 failure mode.
	x, y := synthLinear(150, 0, 27)
	for i := range x {
		for j := range x[i] {
			x[i][j] *= 100 // exaggerate the scale problem
		}
	}
	kr := NewKernelRidge(1.0, 0)
	if err := kr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(PredictAll(kr, x), y); r2 > 0.5 {
		t.Errorf("kernel ridge on raw scales should collapse, R² = %f", r2)
	}
}

func TestFidelityProperties(t *testing.T) {
	real := []float64{1, 2, 3, 4, 5}
	if f := Fidelity(real, real); f != 1 {
		t.Errorf("perfect model fidelity = %f", f)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if f := Fidelity(rev, real); f != 0 {
		t.Errorf("anti-model fidelity = %f", f)
	}
	// Order is what matters, not magnitude.
	scaled := []float64{10, 20, 30, 40, 50}
	if f := Fidelity(scaled, real); f != 1 {
		t.Errorf("monotone transform fidelity = %f", f)
	}
}

func TestFidelityHandlesTies(t *testing.T) {
	real := []float64{1, 1, 2}
	pred := []float64{5, 5, 9}
	if f := Fidelity(pred, real); f != 1 {
		t.Errorf("tie-preserving fidelity = %f", f)
	}
	predBreaksTie := []float64{5, 6, 9}
	if f := Fidelity(predBreaksTie, real); f == 1 {
		t.Error("broken tie should reduce fidelity")
	}
}

// Property: fidelity is invariant under any strictly increasing transform
// of the predictions.
func TestQuickFidelityMonotoneInvariance(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		pred := make([]float64, len(raw))
		for i, v := range raw {
			pred[i] = math.Atan(v) * 3 // strictly increasing
		}
		base := Fidelity(raw, raw)
		tr := Fidelity(pred, raw)
		return math.Abs(base-tr) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	real := []float64{1, 2, 5}
	if got := MSE(pred, real); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MSE = %f", got)
	}
	if got := R2(real, real); got != 1 {
		t.Errorf("R² of perfect = %f", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %f", got)
	}
}

func TestScalerRoundTrip(t *testing.T) {
	x, _ := synthLinear(100, 0, 30)
	s := FitScaler(x)
	xs := s.Transform(x)
	// Mean ≈ 0, std ≈ 1 per column.
	d := len(x[0])
	for j := 0; j < d; j++ {
		var mean, sq float64
		for _, r := range xs {
			mean += r[j]
		}
		mean /= float64(len(xs))
		for _, r := range xs {
			sq += (r[j] - mean) * (r[j] - mean)
		}
		std := math.Sqrt(sq / float64(len(xs)))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Errorf("col %d: mean %g std %g", j, mean, std)
		}
	}
}

func TestTrainTestSplitDeterministic(t *testing.T) {
	x, y := synthLinear(100, 0, 31)
	xtr1, _, xte1, _ := TrainTestSplit(x, y, 0.7, 5)
	xtr2, _, xte2, _ := TrainTestSplit(x, y, 0.7, 5)
	if len(xtr1) != 70 || len(xte1) != 30 {
		t.Fatalf("split sizes %d/%d", len(xtr1), len(xte1))
	}
	for i := range xtr1 {
		if &xtr1[i][0] != &xtr2[i][0] {
			t.Fatal("split not deterministic")
		}
	}
	_ = xte2
}

func TestEnginesRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Engines() {
		names[e.Name] = true
		r := e.New(1)
		if r == nil {
			t.Fatalf("%s: nil regressor", e.Name)
		}
	}
	// All 13 Table 3 learning engines (the naïve models live in the
	// experiment driver, not here).
	want := []string{
		"Random Forest", "Decision Tree", "K-Neighbors", "Bayesian Ridge",
		"Partial least squares", "Lasso", "Ada Boost", "Least-angle",
		"Gradient Boosting", "MLP neural network", "Gaussian process",
		"Kernel ridge", "Stochastic Gradient Descent",
	}
	if len(names) != len(want) {
		t.Errorf("got %d engines, want %d", len(names), len(want))
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("missing engine %q", n)
		}
	}
	if _, err := EngineByName("Random Forest"); err != nil {
		t.Error(err)
	}
	if _, err := EngineByName("nope"); err == nil {
		t.Error("expected error for unknown engine")
	}
}

func TestAllEnginesFitWithoutError(t *testing.T) {
	x, y := synthNonlinear(120, 40)
	for _, e := range Engines() {
		r := e.New(7)
		if err := r.Fit(x, y); err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		p := r.Predict(x[0])
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Errorf("%s: non-finite prediction %f", e.Name, p)
		}
	}
}

func TestEnginesRejectEmptyData(t *testing.T) {
	for _, e := range Engines() {
		r := e.New(1)
		if err := r.Fit(nil, nil); err == nil {
			t.Errorf("%s: expected error on empty data", e.Name)
		}
	}
}
