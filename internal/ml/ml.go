// Package ml implements the supervised regression engines the autoAx
// methodology uses to estimate QoR and hardware cost without simulation or
// synthesis (paper §2.3), plus the fidelity metric used to rank them
// (Table 3).
//
// Every engine from the paper's comparison is reimplemented from scratch
// on the standard library: random forest, CART decision tree, k-nearest
// neighbours, Bayesian ridge, partial least squares, Lasso, AdaBoost.R2,
// least-angle regression, gradient boosting, a multilayer perceptron,
// Gaussian-process regression, kernel ridge and a plain SGD linear model.
// Engines mirror scikit-learn's *default* behaviour — including the
// defaults that hurt (kernel methods and SGD receive raw, unscaled
// features exactly as the paper's experiment fed them), which is what
// produces Table 3's characteristic ranking.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Regressor is the common supervised-learning interface: fit on rows of X
// against y, then predict scalar targets.
type Regressor interface {
	Fit(x [][]float64, y []float64) error
	Predict(x []float64) float64
}

// ErrNoData is returned by Fit when the training set is empty or ragged.
var ErrNoData = errors.New("ml: empty or inconsistent training data")

// checkXY validates training data shape.
func checkXY(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrNoData
	}
	d := len(x[0])
	if d == 0 {
		return ErrNoData
	}
	for _, r := range x {
		if len(r) != d {
			return ErrNoData
		}
	}
	return nil
}

// PredictAll applies r to every row.
func PredictAll(r Regressor, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = r.Predict(row)
	}
	return out
}

// Fidelity returns the fraction of sample pairs (i < j) whose predicted
// values stand in the same relation (<, =, >) as their true values — the
// model-quality criterion autoAx optimizes instead of accuracy (§2.3).
// Value ties are compared with tolerance eps relative to the value range.
func Fidelity(pred, real []float64) float64 {
	if len(pred) != len(real) || len(pred) < 2 {
		return 0
	}
	lo, hi := real[0], real[0]
	for _, v := range real {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	eps := (hi - lo) * 1e-9
	agree, total := 0, 0
	for i := 0; i < len(pred); i++ {
		for j := i + 1; j < len(pred); j++ {
			total++
			if cmp(real[i], real[j], eps) == cmp(pred[i], pred[j], eps) {
				agree++
			}
		}
	}
	return float64(agree) / float64(total)
}

func cmp(a, b, eps float64) int {
	switch {
	case a-b > eps:
		return 1
	case b-a > eps:
		return -1
	default:
		return 0
	}
}

// MSE returns the mean squared error.
func MSE(pred, real []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - real[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination.
func R2(pred, real []float64) float64 {
	var mean float64
	for _, v := range real {
		mean += v
	}
	mean /= float64(len(real))
	var ssRes, ssTot float64
	for i := range real {
		ssRes += (real[i] - pred[i]) * (real[i] - pred[i])
		ssTot += (real[i] - mean) * (real[i] - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Pearson returns the linear correlation coefficient.
func Pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Scaler standardizes features to zero mean and unit variance; constant
// features are left centred.
type Scaler struct {
	Mean, Std []float64
}

// FitScaler learns standardization parameters from x.
func FitScaler(x [][]float64) *Scaler {
	d := len(x[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, r := range x {
		for j, v := range r {
			s.Mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, r := range x {
		for j, v := range r {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns standardized copies of the rows.
func (s *Scaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, r := range x {
		out[i] = s.TransformRow(r)
	}
	return out
}

// TransformRow standardizes a single row into a fresh slice.
func (s *Scaler) TransformRow(r []float64) []float64 {
	o := make([]float64, len(r))
	for j, v := range r {
		o[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return o
}

// TrainTestSplit deterministically shuffles indices with the seed and
// splits the data; trainFrac in (0,1).
func TrainTestSplit(x [][]float64, y []float64, trainFrac float64, seed int64) (xtr [][]float64, ytr []float64, xte [][]float64, yte []float64) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(x))
	cut := int(trainFrac * float64(len(x)))
	for i, id := range idx {
		if i < cut {
			xtr = append(xtr, x[id])
			ytr = append(ytr, y[id])
		} else {
			xte = append(xte, x[id])
			yte = append(yte, y[id])
		}
	}
	return
}

// EngineSpec names a constructor so experiments can enumerate the Table 3
// engines uniformly.
type EngineSpec struct {
	Name string
	New  func(seed int64) Regressor
}

// Engines lists the Table 3 learning engines in the paper's row order.
func Engines() []EngineSpec {
	return []EngineSpec{
		{"Random Forest", func(seed int64) Regressor { return NewRandomForest(100, seed) }},
		{"Decision Tree", func(seed int64) Regressor { return NewDecisionTree(0, 2) }},
		{"K-Neighbors", func(seed int64) Regressor { return NewKNN(5) }},
		{"Bayesian Ridge", func(seed int64) Regressor { return NewBayesianRidge() }},
		{"Partial least squares", func(seed int64) Regressor { return NewPLS(2) }},
		// Lasso's scikit-learn default α = 1 zeroes every weight when the
		// target spans [0,1] (SSIM): the paper tunes engines whose fidelity
		// is insufficient (§2.3), so the registry uses a workable α.
		{"Lasso", func(seed int64) Regressor { return NewLasso(0.01, 1000) }},
		{"Ada Boost", func(seed int64) Regressor { return NewAdaBoostR2(50, seed) }},
		{"Least-angle", func(seed int64) Regressor { return NewLARS(0) }},
		{"Gradient Boosting", func(seed int64) Regressor { return NewGradientBoosting(100, 0.1, 3, seed) }},
		{"MLP neural network", func(seed int64) Regressor { return NewMLP([]int{100}, 200, seed) }},
		{"Gaussian process", func(seed int64) Regressor { return NewGaussianProcess(1.0, 1e-10) }},
		{"Kernel ridge", func(seed int64) Regressor { return NewKernelRidge(1.0, 0) }},
		{"Stochastic Gradient Descent", func(seed int64) Regressor { return NewSGD(0.01, 100, seed) }},
	}
}

// EngineByName returns the spec with the given name.
func EngineByName(name string) (EngineSpec, error) {
	for _, e := range Engines() {
		if e.Name == name {
			return e, nil
		}
	}
	return EngineSpec{}, fmt.Errorf("ml: unknown engine %q", name)
}

// argsortAsc returns indices sorting v ascending (stable).
func argsortAsc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	return idx
}
