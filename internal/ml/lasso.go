package ml

import (
	"math"

	"autoax/internal/mat"
)

// Lasso is L1-regularized linear regression fit by cyclic coordinate
// descent on standardized features (scikit-learn's algorithm and default
// α = 1).
type Lasso struct {
	Alpha   float64
	MaxIter int
	Tol     float64

	scaler *Scaler
	w      []float64 // standardized-space weights
	ymean  float64
}

// NewLasso returns a Lasso regressor.
func NewLasso(alpha float64, maxIter int) *Lasso {
	return &Lasso{Alpha: alpha, MaxIter: maxIter, Tol: 1e-6}
}

// Fit implements Regressor.
func (l *Lasso) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	l.scaler = FitScaler(x)
	xs := l.scaler.Transform(x)
	n, d := len(xs), len(xs[0])
	l.ymean = 0
	for _, v := range y {
		l.ymean += v
	}
	l.ymean /= float64(n)
	yc := make([]float64, n)
	for i := range y {
		yc[i] = y[i] - l.ymean
	}
	// Column norms (constant under standardization, but recompute for
	// robustness) and residual bookkeeping.
	colSq := make([]float64, d)
	for _, row := range xs {
		for j, v := range row {
			colSq[j] += v * v
		}
	}
	w := make([]float64, d)
	resid := append([]float64(nil), yc...)
	thr := l.Alpha * float64(n)
	for it := 0; it < l.MaxIter; it++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = x_j · resid + w_j·colSq (add back j's contribution).
			rho := 0.0
			for i, row := range xs {
				rho += row[j] * resid[i]
			}
			rho += w[j] * colSq[j]
			var nw float64
			switch {
			case rho > thr:
				nw = (rho - thr) / colSq[j]
			case rho < -thr:
				nw = (rho + thr) / colSq[j]
			default:
				nw = 0
			}
			if delta := nw - w[j]; delta != 0 {
				for i, row := range xs {
					resid[i] -= delta * row[j]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				w[j] = nw
			}
		}
		if maxDelta < l.Tol {
			break
		}
	}
	l.w = w
	return nil
}

// Predict implements Regressor.
func (l *Lasso) Predict(x []float64) float64 {
	return mat.Dot(l.w, l.scaler.TransformRow(x)) + l.ymean
}

// LARS implements least-angle regression: predictors enter the active set
// one at a time in the direction equiangular to the active correlations.
// With MaxSteps = 0 the full path is followed (ending at the least-squares
// solution); smaller values stop early, yielding sparse models.
type LARS struct {
	MaxSteps int

	scaler *Scaler
	w      []float64
	ymean  float64
}

// NewLARS returns a least-angle regressor; maxSteps 0 means min(n−1, d).
func NewLARS(maxSteps int) *LARS { return &LARS{MaxSteps: maxSteps} }

// Fit implements Regressor.
func (l *LARS) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	l.scaler = FitScaler(x)
	xs := l.scaler.Transform(x)
	n, d := len(xs), len(xs[0])
	l.ymean = 0
	for _, v := range y {
		l.ymean += v
	}
	l.ymean /= float64(n)

	steps := l.MaxSteps
	limit := d
	if n-1 < limit {
		limit = n - 1
	}
	if steps <= 0 || steps > limit {
		steps = limit
	}

	w := make([]float64, d)
	mu := make([]float64, n) // current fit
	var active []int
	inActive := make([]bool, d)
	cols := make([][]float64, d)
	for j := 0; j < d; j++ {
		c := make([]float64, n)
		for i, row := range xs {
			c[i] = row[j]
		}
		cols[j] = c
	}

	for step := 0; step < steps; step++ {
		// Correlations with the residual (Efron et al., eq. 2.8 ff.).
		resid := make([]float64, n)
		for i := range resid {
			resid[i] = (y[i] - l.ymean) - mu[i]
		}
		corr := make([]float64, d)
		cmax := 0.0
		bestJ := -1
		for j := 0; j < d; j++ {
			corr[j] = mat.Dot(cols[j], resid)
			if a := math.Abs(corr[j]); a > cmax {
				cmax = a
			}
			if !inActive[j] {
				if bestJ < 0 || math.Abs(corr[j]) > math.Abs(corr[bestJ]) {
					bestJ = j
				}
			}
		}
		if cmax < 1e-10 || bestJ < 0 {
			break
		}
		inActive[bestJ] = true
		active = append(active, bestJ)

		// Equiangular direction u = X_A · (A_norm · G⁻¹ 1) over the signed
		// active predictors.
		k := len(active)
		signs := make([]float64, k)
		for a, j := range active {
			if corr[j] >= 0 {
				signs[a] = 1
			} else {
				signs[a] = -1
			}
		}
		g := mat.New(k, k)
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				g.Set(a, b, signs[a]*signs[b]*mat.Dot(cols[active[a]], cols[active[b]]))
			}
		}
		ones := make([]float64, k)
		for a := range ones {
			ones[a] = 1
		}
		gInv1, err := mat.SolveLU(g, ones)
		if err != nil {
			break
		}
		sum := 0.0
		for _, v := range gInv1 {
			sum += v
		}
		if sum <= 0 {
			break
		}
		aNorm := 1 / math.Sqrt(sum)
		u := make([]float64, n)
		for a, j := range active {
			mat.AddScaled(u, aNorm*gInv1[a]*signs[a], cols[j])
		}
		// a_j = x_j · u; for active predictors s_j·a_j = aNorm.
		gamma := cmax / aNorm // final-step jump to the joint LS fit
		if k < limit && step < steps-1 {
			for j := 0; j < d; j++ {
				if inActive[j] {
					continue
				}
				aj := mat.Dot(cols[j], u)
				for _, t := range []float64{(cmax - corr[j]) / (aNorm - aj), (cmax + corr[j]) / (aNorm + aj)} {
					if t > 1e-12 && t < gamma {
						gamma = t
					}
				}
			}
		}
		for a, j := range active {
			w[j] += gamma * aNorm * gInv1[a] * signs[a]
		}
		mat.AddScaled(mu, gamma, u)
	}
	l.w = w
	return nil
}

// Predict implements Regressor.
func (l *LARS) Predict(x []float64) float64 {
	return mat.Dot(l.w, l.scaler.TransformRow(x)) + l.ymean
}

// PLS is partial-least-squares regression via the NIPALS algorithm with
// NComp latent components (scikit-learn default 2).
type PLS struct {
	NComp int

	scaler *Scaler
	w      []float64
	ymean  float64
}

// NewPLS returns a PLS regressor with the given number of components.
func NewPLS(ncomp int) *PLS { return &PLS{NComp: ncomp} }

// Fit implements Regressor.
func (p *PLS) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	p.scaler = FitScaler(x)
	xs := p.scaler.Transform(x)
	n, d := len(xs), len(xs[0])
	p.ymean = 0
	for _, v := range y {
		p.ymean += v
	}
	p.ymean /= float64(n)
	// Working copies (deflated in place).
	xd := make([][]float64, n)
	for i := range xd {
		xd[i] = append([]float64(nil), xs[i]...)
	}
	yd := make([]float64, n)
	for i := range y {
		yd[i] = y[i] - p.ymean
	}
	ncomp := p.NComp
	if ncomp > d {
		ncomp = d
	}
	// Accumulate the final coefficient vector in standardized space.
	beta := make([]float64, d)
	ws := make([][]float64, 0, ncomp) // weights
	ps := make([][]float64, 0, ncomp) // loadings
	qs := make([]float64, 0, ncomp)   // y loadings
	for c := 0; c < ncomp; c++ {
		// w ∝ Xᵀy
		w := make([]float64, d)
		for i, row := range xd {
			mat.AddScaled(w, yd[i], row)
		}
		nw := mat.Norm2(w)
		if nw < 1e-12 {
			break
		}
		for j := range w {
			w[j] /= nw
		}
		// Scores t = X·w
		t := make([]float64, n)
		for i, row := range xd {
			t[i] = mat.Dot(row, w)
		}
		tt := mat.Dot(t, t)
		if tt < 1e-12 {
			break
		}
		// Loadings.
		pv := make([]float64, d)
		for i, row := range xd {
			mat.AddScaled(pv, t[i]/tt, row)
		}
		q := mat.Dot(yd, t) / tt
		// Deflate.
		for i := range xd {
			mat.AddScaled(xd[i], -t[i], pv)
			yd[i] -= q * t[i]
		}
		ws = append(ws, w)
		ps = append(ps, pv)
		qs = append(qs, q)
	}
	// β = W (PᵀW)⁻¹ q
	k := len(ws)
	if k > 0 {
		pw := mat.New(k, k)
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				pw.Set(a, b, mat.Dot(ps[a], ws[b]))
			}
		}
		sol, err := mat.SolveLU(pw, qs)
		if err == nil {
			for a := 0; a < k; a++ {
				mat.AddScaled(beta, sol[a], ws[a])
			}
		}
	}
	p.w = beta
	return nil
}

// Predict implements Regressor.
func (p *PLS) Predict(x []float64) float64 {
	return mat.Dot(p.w, p.scaler.TransformRow(x)) + p.ymean
}
