package ml

import (
	"math"
	"math/rand"
	"sort"
)

// AdaBoostR2 is the Drucker AdaBoost.R2 regression ensemble over shallow
// CART trees (scikit-learn default: 50 estimators of depth 3, linear
// loss), predicting with the weighted median of the estimators.
type AdaBoostR2 struct {
	NEstimators int
	MaxDepth    int
	seed        int64

	trees   []*DecisionTree
	weights []float64 // log(1/β) per estimator
}

// NewAdaBoostR2 returns an AdaBoost.R2 ensemble.
func NewAdaBoostR2(n int, seed int64) *AdaBoostR2 {
	return &AdaBoostR2{NEstimators: n, MaxDepth: 3, seed: seed}
}

// Fit implements Regressor.
func (a *AdaBoostR2) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	n := len(x)
	rng := rand.New(rand.NewSource(a.seed))
	w := make([]float64, n)
	for i := range w {
		w[i] = 1.0 / float64(n)
	}
	a.trees = a.trees[:0]
	a.weights = a.weights[:0]
	errs := make([]float64, n)
	for m := 0; m < a.NEstimators; m++ {
		// Weighted bootstrap sample.
		cum := make([]float64, n)
		s := 0.0
		for i, v := range w {
			s += v
			cum[i] = s
		}
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			r := rng.Float64() * s
			j := sort.SearchFloat64s(cum, r)
			if j >= n {
				j = n - 1
			}
			bx[i] = x[j]
			by[i] = y[j]
		}
		tr := NewDecisionTree(a.MaxDepth, 2)
		if err := tr.Fit(bx, by); err != nil {
			return err
		}
		// Linear loss normalized by the max error.
		maxErr := 0.0
		for i := range x {
			errs[i] = math.Abs(tr.Predict(x[i]) - y[i])
			if errs[i] > maxErr {
				maxErr = errs[i]
			}
		}
		if maxErr == 0 {
			// Perfect fit: keep it with a large weight and stop.
			a.trees = append(a.trees, tr)
			a.weights = append(a.weights, math.Log(1e9))
			break
		}
		var lbar float64
		for i := range errs {
			lbar += w[i] * errs[i] / maxErr
		}
		if lbar >= 0.5 {
			if len(a.trees) == 0 {
				a.trees = append(a.trees, tr)
				a.weights = append(a.weights, 1)
			}
			break
		}
		beta := lbar / (1 - lbar)
		a.trees = append(a.trees, tr)
		a.weights = append(a.weights, math.Log(1/beta))
		// Reweight: low-error samples are de-emphasized.
		var sum float64
		for i := range w {
			w[i] *= math.Pow(beta, 1-errs[i]/maxErr)
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return nil
}

// Predict implements Regressor: weighted median of estimator outputs.
func (a *AdaBoostR2) Predict(x []float64) float64 {
	k := len(a.trees)
	if k == 0 {
		return 0
	}
	preds := make([]float64, k)
	for i, t := range a.trees {
		preds[i] = t.Predict(x)
	}
	order := argsortAsc(preds)
	var total float64
	for _, w := range a.weights {
		total += w
	}
	var acc float64
	for _, o := range order {
		acc += a.weights[o]
		if acc >= total/2 {
			return preds[o]
		}
	}
	return preds[order[k-1]]
}

// GradientBoosting is least-squares gradient tree boosting: NStages
// shallow trees each fitting the current residual, scaled by the learning
// rate (scikit-learn defaults: 100 stages, lr 0.1, depth 3).
type GradientBoosting struct {
	NStages  int
	LR       float64
	MaxDepth int
	seed     int64

	init  float64
	trees []*DecisionTree
}

// NewGradientBoosting returns a gradient-boosting regressor.
func NewGradientBoosting(stages int, lr float64, depth int, seed int64) *GradientBoosting {
	return &GradientBoosting{NStages: stages, LR: lr, MaxDepth: depth, seed: seed}
}

// Fit implements Regressor.
func (g *GradientBoosting) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	n := len(x)
	g.init = 0
	for _, v := range y {
		g.init += v
	}
	g.init /= float64(n)
	resid := make([]float64, n)
	for i := range y {
		resid[i] = y[i] - g.init
	}
	g.trees = g.trees[:0]
	for m := 0; m < g.NStages; m++ {
		tr := NewDecisionTree(g.MaxDepth, 2)
		if err := tr.Fit(x, resid); err != nil {
			return err
		}
		g.trees = append(g.trees, tr)
		done := true
		for i := range resid {
			resid[i] -= g.LR * tr.Predict(x[i])
			if math.Abs(resid[i]) > 1e-12 {
				done = false
			}
		}
		if done {
			break
		}
	}
	return nil
}

// Predict implements Regressor.
func (g *GradientBoosting) Predict(x []float64) float64 {
	s := g.init
	for _, t := range g.trees {
		s += g.LR * t.Predict(x)
	}
	return s
}
