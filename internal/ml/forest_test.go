package ml

import (
	"math/rand"
	"reflect"
	"testing"
)

// forestProblem builds a deterministic nonlinear regression problem.
func forestProblem(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, d)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64() * 100
			s += row[j] * float64(j+1)
		}
		x[i] = row
		y[i] = 1/(1+s/100) + rng.NormFloat64()*0.01
	}
	return x, y
}

// sequentialFit reproduces the historical single-goroutine forest fit; the
// parallel Fit must stay bit-identical to it.
func sequentialFit(f *RandomForest, x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(f.seed))
	f.trees = make([]*DecisionTree, f.NTrees)
	n := len(x)
	for k := 0; k < f.NTrees; k++ {
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		tr := NewDecisionTree(0, 2)
		tr.rng = rand.New(rand.NewSource(rng.Int63()))
		if err := tr.Fit(bx, by); err != nil {
			return err
		}
		f.trees[k] = tr
	}
	return nil
}

// TestRandomForestFitParallelDeterministic pins the parallel Fit to the
// sequential reference: identical trees node for node, at any GOMAXPROCS.
func TestRandomForestFitParallelDeterministic(t *testing.T) {
	x, y := forestProblem(120, 4, 3)
	seq := NewRandomForest(12, 42)
	if err := sequentialFit(seq, x, y); err != nil {
		t.Fatal(err)
	}
	par := NewRandomForest(12, 42)
	if err := par.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if len(seq.trees) != len(par.trees) {
		t.Fatalf("tree counts differ: %d vs %d", len(seq.trees), len(par.trees))
	}
	for k := range seq.trees {
		if !reflect.DeepEqual(seq.trees[k].nodes, par.trees[k].nodes) {
			t.Fatalf("tree %d differs between sequential and parallel fit", k)
		}
	}
}

// TestCompiledForestMatchesPredict pins CompiledForest.Predict bit-
// identical to the tree-walking RandomForest.Predict.
func TestCompiledForestMatchesPredict(t *testing.T) {
	x, y := forestProblem(200, 5, 9)
	rf := NewRandomForest(20, 7)
	if err := rf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	cf := rf.Compile()
	rng := rand.New(rand.NewSource(17))
	probe := make([]float64, 5)
	for trial := 0; trial < 2000; trial++ {
		for j := range probe {
			probe[j] = rng.Float64() * 120
		}
		want := rf.Predict(probe)
		got := cf.Predict(probe)
		if want != got {
			t.Fatalf("trial %d: compiled %v != tree-walking %v", trial, got, want)
		}
	}
	// Training points too (exact-memorization leaves).
	for i, row := range x {
		if rf.Predict(row) != cf.Predict(row) {
			t.Fatalf("train row %d: compiled prediction differs", i)
		}
	}
}

// TestCompiledForestPredictNoAllocs guards the zero-allocation contract of
// the compiled inference path.
func TestCompiledForestPredictNoAllocs(t *testing.T) {
	x, y := forestProblem(80, 3, 5)
	rf := NewRandomForest(8, 1)
	if err := rf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	cf := rf.Compile()
	probe := []float64{1, 2, 3}
	if n := testing.AllocsPerRun(200, func() { cf.Predict(probe) }); n != 0 {
		t.Fatalf("CompiledForest.Predict allocates %v times per call", n)
	}
}

// TestCompiledForestEmptyTree covers the unfitted-tree guard.
func TestCompiledForestEmptyTree(t *testing.T) {
	rf := NewRandomForest(2, 1)
	rf.trees = []*DecisionTree{NewDecisionTree(0, 2), NewDecisionTree(0, 2)}
	cf := rf.Compile()
	if got, want := cf.Predict([]float64{1}), rf.Predict([]float64{1}); got != want {
		t.Fatalf("empty-tree forest: compiled %v != tree-walking %v", got, want)
	}
}
