package ml

import (
	"math/rand"
	"testing"
)

// randomForestAndData fits a forest on random data and returns it with a
// probe generator drawing from the training distribution (values collide
// with split thresholds' neighborhoods often).
func randomForestAndData(t testing.TB, seed int64, samples, features, trees int) (*RandomForest, *CompiledForest, func(*rand.Rand) []float64) {
	x := make([][]float64, samples)
	y := make([]float64, samples)
	rng := rand.New(rand.NewSource(seed))
	for i := range x {
		row := make([]float64, features)
		s := 0.0
		for j := range row {
			// A coarse grid makes exact threshold collisions common.
			row[j] = float64(rng.Intn(40)) * 2.5
			s += row[j]
		}
		x[i] = row
		y[i] = 1 / (1 + s/100)
	}
	rf := NewRandomForest(trees, seed)
	if err := rf.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	probe := func(rng *rand.Rand) []float64 {
		row := make([]float64, features)
		for j := range row {
			row[j] = float64(rng.Intn(40)) * 2.5
		}
		return row
	}
	return rf, rf.Compile(), probe
}

// TestPredictBatchMatchesScalar drives PredictBatch over random forests ×
// random batches and demands exact equality with scalar Predict and with
// the uncompiled forest.
func TestPredictBatchMatchesScalar(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		features := 2 + trial%7
		rf, cf, probe := randomForestAndData(t, int64(trial), 60+trial*17, features, 10+trial*7)
		rng := rand.New(rand.NewSource(int64(trial * 31)))
		for _, n := range []int{1, 3, 8, 17, 64} {
			rows := make([][]float64, n)
			for i := range rows {
				rows[i] = probe(rng)
			}
			// Feature-major matrix.
			x := make([]float64, features*n)
			for f := 0; f < features; f++ {
				for i := 0; i < n; i++ {
					x[f*n+i] = rows[i][f]
				}
			}
			out := make([]float64, n)
			cf.PredictBatch(x, n, out)
			for i := range rows {
				want := cf.Predict(rows[i])
				if out[i] != want {
					t.Fatalf("trial %d n=%d point %d: PredictBatch %v, Predict %v", trial, n, i, out[i], want)
				}
				if walked := rf.Predict(rows[i]); out[i] != walked {
					t.Fatalf("trial %d n=%d point %d: PredictBatch %v, tree-walking forest %v", trial, n, i, out[i], walked)
				}
			}
		}
	}
}

// TestIncrementalPredictorMatchesPredict drives random Move/Accept/Reject
// sequences and demands every returned prediction equal Predict on the
// same feature vector, including after rejections roll state back.
func TestIncrementalPredictorMatchesPredict(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		features := 2 + trial%9
		_, cf, probe := randomForestAndData(t, int64(trial+100), 80, features, 30)
		rng := rand.New(rand.NewSource(int64(trial * 7)))
		p := cf.NewIncremental()
		x := probe(rng)
		if got, want := p.Reset(x), cf.Predict(x); got != want {
			t.Fatalf("trial %d: Reset %v, Predict %v", trial, got, want)
		}
		base := append([]float64(nil), x...)
		for step := 0; step < 300; step++ {
			switch rng.Intn(10) {
			case 0: // occasional full reset to a fresh point
				x = probe(rng)
				base = append(base[:0], x...)
				if got, want := p.Reset(x), cf.Predict(x); got != want {
					t.Fatalf("trial %d step %d: Reset %v, Predict %v", trial, step, got, want)
				}
			default:
				maxC := 3
				if features < maxC {
					maxC = features
				}
				nc := 1 + rng.Intn(maxC)
				changed := make([]int, 0, nc)
				for len(changed) < nc {
					f := rng.Intn(features)
					dup := false
					for _, g := range changed {
						if g == f {
							dup = true
						}
					}
					if !dup {
						changed = append(changed, f)
					}
				}
				for _, f := range changed {
					x[f] = float64(rng.Intn(40)) * 2.5
				}
				if got, want := p.Move(x, changed), cf.Predict(x); got != want {
					t.Fatalf("trial %d step %d: Move %v, Predict %v", trial, step, got, want)
				}
				if rng.Intn(2) == 0 {
					p.Accept()
					base = append(base[:0], x...)
				} else {
					p.Reject()
					x = append(x[:0], base...)
					// After a reject the cached state must predict the
					// base point again.
					probeChanged := []int{rng.Intn(features)}
					if got, want := p.Move(x, probeChanged), cf.Predict(x); got != want {
						t.Fatalf("trial %d step %d: post-Reject Move %v, Predict %v", trial, step, got, want)
					}
					p.Reject()
				}
			}
		}
	}
}

// TestIncrementalPredictorZeroAllocs pins the warm-path allocation count
// of the climb's inner step: Move + Reject and Move + Accept must not
// allocate.
func TestIncrementalPredictorZeroAllocs(t *testing.T) {
	_, cf, probe := randomForestAndData(t, 42, 60, 6, 50)
	rng := rand.New(rand.NewSource(9))
	p := cf.NewIncremental()
	x := probe(rng)
	p.Reset(x)
	changed := []int{0}
	vals := []float64{1.25, 7.5, 20, 47.5, 62.5}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		changed[0] = i % 6
		x[changed[0]] = vals[i%len(vals)]
		p.Move(x, changed)
		if i%3 == 0 {
			p.Accept()
		} else {
			p.Reject()
		}
	})
	if allocs != 0 {
		t.Fatalf("incremental Move/resolve allocated %.1f times per run, want 0", allocs)
	}
}

// TestPredictBatchZeroAllocs pins PredictBatch's zero-allocation
// contract.
func TestPredictBatchZeroAllocs(t *testing.T) {
	_, cf, probe := randomForestAndData(t, 43, 60, 5, 40)
	rng := rand.New(rand.NewSource(10))
	const n = 32
	x := make([]float64, 5*n)
	for i := 0; i < n; i++ {
		row := probe(rng)
		for f := 0; f < 5; f++ {
			x[f*n+i] = row[f]
		}
	}
	out := make([]float64, n)
	allocs := testing.AllocsPerRun(100, func() {
		cf.PredictBatch(x, n, out)
	})
	if allocs != 0 {
		t.Fatalf("PredictBatch allocated %.1f times per run, want 0", allocs)
	}
}
