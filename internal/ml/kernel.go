package ml

import (
	"math"

	"autoax/internal/mat"
)

// rbf computes exp(−γ‖a−b‖²).
func rbf(a, b []float64, gamma float64) float64 {
	d := 0.0
	for i, v := range a {
		t := v - b[i]
		d += t * t
	}
	return math.Exp(-gamma * d)
}

// GaussianProcess is Gaussian-process regression with an RBF kernel of
// fixed length scale and a small diagonal noise term.  With the
// scikit-learn-like default noise (1e-10) it interpolates the training set
// — the 100% train / 71% test fidelity overfit visible in Table 3.  Like
// the paper's experiment, it receives raw (unscaled) features.
type GaussianProcess struct {
	LengthScale float64
	Noise       float64

	x     [][]float64
	alpha []float64
	gamma float64
	prior float64
}

// NewGaussianProcess returns a GP regressor.
func NewGaussianProcess(lengthScale, noise float64) *GaussianProcess {
	return &GaussianProcess{LengthScale: lengthScale, Noise: noise}
}

// Fit implements Regressor.
func (g *GaussianProcess) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	n := len(x)
	g.x = x
	g.gamma = 1 / (2 * g.LengthScale * g.LengthScale)
	g.prior = 0
	for _, v := range y {
		g.prior += v
	}
	g.prior /= float64(n)
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rbf(x[i], x[j], g.gamma)
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+g.Noise)
	}
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - g.prior
	}
	// Cholesky with escalating jitter: the RBF Gram matrix of clustered
	// points is numerically rank deficient.
	jitter := g.Noise
	for try := 0; try < 8; try++ {
		l, err := mat.Cholesky(k)
		if err == nil {
			g.alpha = mat.SolveCholesky(l, yc)
			return nil
		}
		if jitter == 0 {
			jitter = 1e-12
		}
		jitter *= 100
		for i := 0; i < n; i++ {
			k.Set(i, i, k.At(i, i)+jitter)
		}
	}
	return mat.ErrSingular
}

// Predict implements Regressor (posterior mean).
func (g *GaussianProcess) Predict(q []float64) float64 {
	s := 0.0
	for i, row := range g.x {
		s += g.alpha[i] * rbf(row, q, g.gamma)
	}
	return g.prior + s
}

// KernelRidge is ridge regression in RBF feature space: (K + λI)α = y.
// γ defaults to 1/d (scikit-learn's convention) and the features are used
// raw: on badly scaled inputs the kernel saturates to zero and the model
// collapses toward a constant — the failure mode behind kernel ridge's
// 41% fidelity in Table 3.
type KernelRidge struct {
	Lambda float64
	Gamma  float64 // 0 → 1/numFeatures

	x     [][]float64
	alpha []float64
	gamma float64
}

// NewKernelRidge returns an RBF kernel ridge regressor; gamma 0 selects
// 1/numFeatures at fit time.
func NewKernelRidge(lambda, gamma float64) *KernelRidge {
	return &KernelRidge{Lambda: lambda, Gamma: gamma}
}

// Fit implements Regressor.
func (r *KernelRidge) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	n := len(x)
	r.x = x
	r.gamma = r.Gamma
	if r.gamma == 0 {
		r.gamma = 1 / float64(len(x[0]))
	}
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rbf(x[i], x[j], r.gamma)
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Set(i, i, k.At(i, i)+r.Lambda)
	}
	l, err := mat.Cholesky(k)
	if err != nil {
		// Fall back to LU for semidefinite corner cases.
		a, err2 := mat.SolveLU(k, y)
		if err2 != nil {
			return err
		}
		r.alpha = a
		return nil
	}
	r.alpha = mat.SolveCholesky(l, y)
	return nil
}

// Predict implements Regressor.
func (r *KernelRidge) Predict(q []float64) float64 {
	s := 0.0
	for i, row := range r.x {
		s += r.alpha[i] * rbf(row, q, r.gamma)
	}
	return s
}
