package ml

// FeatureBit returns the path-mask bit for feature f.  Features ≥ 63
// share bit 63 (saturating), which keeps mask tests conservative: a
// shared bit can force an unnecessary re-walk but never an unsound skip.
func FeatureBit(f int) uint64 {
	if f >= 63 {
		return 1 << 63
	}
	return 1 << uint(f)
}

// IncrementalPredictor evaluates a compiled forest at a point that
// evolves by small feature edits — the access pattern of Algorithm 1's
// hill climb, where each neighbor differs from its parent in a handful of
// feature slots.  It caches every tree's leaf value together with the set
// of features the tree's realized root-to-leaf path tested (a saturating
// 64-bit mask, see FeatureBit).  Move re-walks only trees whose recorded
// path tested a changed feature: any other tree's comparisons all read
// unchanged features, so its path — and leaf — are provably identical.  A
// rejected move restores the cached state in O(re-walked trees).
//
// Move runs a value-only walk; the path masks of the re-walked trees are
// refreshed lazily by Accept (which re-walks the same trees with mask
// recording), because a rejected move — the common case in a stagnating
// climb — restores the old masks anyway, and the value-only step is
// meaningfully cheaper.
//
// Predictions are bit-identical to CompiledForest.Predict: leaf values
// are accumulated in tree order and divided once at the end.  After the
// predictor warms up, Reset, Move, Accept and Reject perform no
// allocations.  Not safe for concurrent use; create one per goroutine
// (the compiled forest itself is shared and immutable).
type IncrementalPredictor struct {
	cf     *CompiledForest
	mx     []uint64  // order-mapped features of the current point
	leaves []float64 // per-tree cached leaf values
	masks  []uint64  // per-tree realized-path feature masks
	dirty  []int32   // trees touched by the pending Move, depth-grouped
	undo   []float64 // pre-Move leaves of the dirty trees, parallel
	mxUndo []mxUndo

	// Dense mode: when the observed dirty fraction shows the mask filter
	// barely skips anything (models whose trees test every feature on
	// most paths, e.g. few-feature QoR models), the predictor flips —
	// permanently — to walking every tree per Move with a flat copy-out
	// undo.  That trades ≤ (1−dirtyRate) extra walk volume for dropping
	// the per-tree scan, append and accept-time mask re-walk entirely.
	moves, dirtySum int
	dense           bool
	pendingDense    bool // which kind of undo the unresolved Move left
	denseUndo       []float64
}

// Dense-mode switch: after denseWarmup moves, flip when the average dirty
// fraction is at least denseThreshold of the forest.
const (
	denseWarmup    = 32
	denseThreshold = 0.85
)

type mxUndo struct {
	feat int32
	val  uint64
}

// NewIncremental returns an incremental predictor over the forest.
func (cf *CompiledForest) NewIncremental() *IncrementalPredictor {
	n := len(cf.roots)
	return &IncrementalPredictor{
		cf:     cf,
		leaves: make([]float64, n),
		masks:  make([]uint64, n),
		dirty:  make([]int32, 0, n),
		undo:   make([]float64, 0, n),
	}
}

// Reset walks every tree for x, (re)filling the leaf and path-mask caches,
// and returns the prediction.  x must cover every feature the forest
// tests (len(x) > max feature index), as with Predict.
func (p *IncrementalPredictor) Reset(x []float64) float64 {
	cf := p.cf
	if len(x) <= int(cf.maxFeat) {
		panic("ml: incremental predictor: feature vector shorter than the forest's feature set")
	}
	if cap(p.mx) < len(x) {
		p.mx = make([]uint64, len(x))
	}
	p.mx = p.mx[:len(x)]
	for f, v := range x {
		p.mx[f] = orderedBits(v)
	}
	p.clearPending()
	p.walkMasks(cf.order)
	return p.sum()
}

// Move updates features changed (indices into x, already holding their
// new values) and returns the prediction for the edited point, re-walking
// only the trees whose cached paths tested a changed feature.  Every Move
// must be resolved by Accept or Reject before the next Move or Reset.
func (p *IncrementalPredictor) Move(x []float64, changed []int) float64 {
	var delta uint64
	p.mxUndo = p.mxUndo[:0]
	for _, f := range changed {
		delta |= FeatureBit(f)
		p.mxUndo = append(p.mxUndo, mxUndo{feat: int32(f), val: p.mx[f]})
		p.mx[f] = orderedBits(x[f])
	}
	if p.dense {
		p.pendingDense = true
		if cap(p.denseUndo) < len(p.leaves) {
			p.denseUndo = make([]float64, len(p.leaves))
		}
		p.denseUndo = p.denseUndo[:len(p.leaves)]
		copy(p.denseUndo, p.leaves)
		p.walkValues(p.cf.order)
		return p.sum()
	}
	p.pendingDense = false
	// Collect dirty trees via cf.order so chunks group similar depths,
	// capturing the pre-Move leaves for Reject in the same pass.
	p.dirty = p.dirty[:0]
	p.undo = p.undo[:0]
	for _, t := range p.cf.order {
		if p.masks[t]&delta != 0 {
			p.dirty = append(p.dirty, t)
			p.undo = append(p.undo, p.leaves[t])
		}
	}
	p.moves++
	p.dirtySum += len(p.dirty)
	if p.moves == denseWarmup {
		if float64(p.dirtySum) >= denseThreshold*float64(denseWarmup*len(p.leaves)) {
			p.dense = true // one-way: masks go stale and are never read again
		}
		p.moves, p.dirtySum = 0, 0
	}
	p.walkValues(p.dirty)
	return p.sum()
}

// Accept commits the last Move and, in sparse mode, refreshes the
// re-walked trees' path masks (the value-only Move walk leaves them
// stale; dense mode never reads them again).
func (p *IncrementalPredictor) Accept() {
	if !p.pendingDense {
		p.walkMasks(p.dirty)
	}
	p.clearPending()
}

// Reject rolls the last Move back: cached leaves and mapped features
// return to the pre-Move state (path masks were not touched by Move).
func (p *IncrementalPredictor) Reject() {
	if p.pendingDense {
		copy(p.leaves, p.denseUndo)
	} else {
		for i, t := range p.dirty {
			p.leaves[t] = p.undo[i]
		}
	}
	for _, u := range p.mxUndo {
		p.mx[u.feat] = u.val
	}
	p.clearPending()
}

func (p *IncrementalPredictor) clearPending() {
	p.dirty = p.dirty[:0]
	p.undo = p.undo[:0]
	p.mxUndo = p.mxUndo[:0]
}

// walkValues runs the chunked branchless walk over the given trees,
// refreshing their cached leaf values only.  Full chunks use
// register-resident walkers (walk8); the tail chunk takes the array
// loop.  (A 16-wide chunk was measured here and lost ~20% end to end:
// sixteen walker ids spill, and the coarser early exit — the deepest of
// sixteen trees gates every walker's rounds instead of the deepest of
// eight — adds parked spins; the wide walker only pays where all rounds
// are uniform, as in PredictBatch's per-tree point chunks.)
func (p *IncrementalPredictor) walkValues(trees []int32) {
	cf := p.cf
	nodes := cf.nodes
	mx := p.mx
	c := 0
	for ; c+walkWidth <= len(trees); c += walkWidth {
		rounds := int32(0)
		for j := 0; j < walkWidth; j++ {
			if d := cf.depths[trees[c+j]]; d > rounds {
				rounds = d
			}
		}
		walk8(nodes, cf.values, mx, cf.roots, trees[c:c+walkWidth], p.leaves, rounds)
	}
	if c == len(trees) {
		return
	}
	m := len(trees) - c
	var ids [walkWidth]int32
	rounds := int32(0)
	for j := 0; j < m; j++ {
		t := trees[c+j]
		ids[j] = cf.roots[t]
		if d := cf.depths[t]; d > rounds {
			rounds = d
		}
	}
	for r := int32(0); r < rounds; r++ {
		for j := 0; j < m; j++ {
			ids[j] = step(nodes, mx, ids[j])
		}
	}
	for j := 0; j < m; j++ {
		p.leaves[trees[c+j]] = cf.values[ids[j]]
	}
}

// walk8 advances eight walkers held in locals — not a stack array — so
// each walker's id stays in a register instead of round-tripping through
// a store/load pair every level, and writes the eight leaf values.  It
// exits as soon as a two-round block moves no walker (all parked).
func walk8(nodes []cnode, values []float64, mx []uint64, roots []int32, trees []int32, leaves []float64, rounds int32) {
	id0 := roots[trees[0]]
	id1 := roots[trees[1]]
	id2 := roots[trees[2]]
	id3 := roots[trees[3]]
	id4 := roots[trees[4]]
	id5 := roots[trees[5]]
	id6 := roots[trees[6]]
	id7 := roots[trees[7]]
	for r := int32(0); r < rounds; {
		s0 := step(nodes, mx, id0)
		s1 := step(nodes, mx, id1)
		s2 := step(nodes, mx, id2)
		s3 := step(nodes, mx, id3)
		s4 := step(nodes, mx, id4)
		s5 := step(nodes, mx, id5)
		s6 := step(nodes, mx, id6)
		s7 := step(nodes, mx, id7)
		moved := (s0 ^ id0) | (s1 ^ id1) | (s2 ^ id2) | (s3 ^ id3) |
			(s4 ^ id4) | (s5 ^ id5) | (s6 ^ id6) | (s7 ^ id7)
		id0, id1, id2, id3 = s0, s1, s2, s3
		id4, id5, id6, id7 = s4, s5, s6, s7
		if moved == 0 {
			break
		}
		id0 = step(nodes, mx, id0)
		id1 = step(nodes, mx, id1)
		id2 = step(nodes, mx, id2)
		id3 = step(nodes, mx, id3)
		id4 = step(nodes, mx, id4)
		id5 = step(nodes, mx, id5)
		id6 = step(nodes, mx, id6)
		id7 = step(nodes, mx, id7)
		r += 2
	}
	leaves[trees[0]] = values[id0]
	leaves[trees[1]] = values[id1]
	leaves[trees[2]] = values[id2]
	leaves[trees[3]] = values[id3]
	leaves[trees[4]] = values[id4]
	leaves[trees[5]] = values[id5]
	leaves[trees[6]] = values[id6]
	leaves[trees[7]] = values[id7]
}

// walkMasks is walkValues with path-mask recording: each walker ORs the
// FeatureBit of every internal node it visits (parked walkers sit on
// leaves and stay clean).  It runs only on Reset and Accept, so it keeps
// the plain array-walker loop.
func (p *IncrementalPredictor) walkMasks(trees []int32) {
	cf := p.cf
	nodes := cf.nodes
	mx := p.mx
	for c := 0; c < len(trees); c += walkWidth {
		m := len(trees) - c
		if m > walkWidth {
			m = walkWidth
		}
		var ids [walkWidth]int32
		var pm [walkWidth]uint64
		rounds := int32(0)
		for j := 0; j < m; j++ {
			t := trees[c+j]
			ids[j] = cf.roots[t]
			if d := cf.depths[t]; d > rounds {
				rounds = d
			}
		}
		for r := int32(0); r < rounds; r++ {
			for j := 0; j < m; j++ {
				n := nodeAt(nodes, ids[j])
				if n.thresh != 0 { // internal node (leaves map to 0)
					pm[j] |= FeatureBit(int(n.featIdx()))
				}
				ids[j] = step(nodes, mx, ids[j])
			}
		}
		for j := 0; j < m; j++ {
			t := trees[c+j]
			p.leaves[t] = cf.values[ids[j]]
			p.masks[t] = pm[j]
		}
	}
}

// sum accumulates the cached leaves in tree order — the same additions
// and final division Predict performs.
func (p *IncrementalPredictor) sum() float64 {
	var s float64
	for _, v := range p.leaves {
		s += v
	}
	return s / p.cf.nTrees
}
