package ml

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// cnode is one node of a compiled forest: 24 bytes, so a cache line holds
// more than two nodes and a root-to-leaf walk touches a fraction of the
// lines the pointer-per-tree layout did.  Trees are flattened in preorder
// with the left child immediately following its parent, so only the right
// child needs an index.
type cnode struct {
	thresh  float64
	value   float64
	feature int32 // -1 for leaves
	right   int32 // arena index of the right child
}

// CompiledForest is a RandomForest flattened into one contiguous node
// arena for cache-friendly inference.  It is immutable and safe for
// concurrent use, and Predict is bit-identical to the source forest's
// tree-walking Predict (same per-tree traversal, same summation order,
// same final division).
type CompiledForest struct {
	nodes  []cnode
	roots  []int32
	nTrees float64
}

// Compile flattens a fitted forest into a CompiledForest.
func (f *RandomForest) Compile() *CompiledForest {
	cf := &CompiledForest{
		roots:  make([]int32, 0, len(f.trees)),
		nTrees: float64(len(f.trees)),
	}
	for _, t := range f.trees {
		cf.roots = append(cf.roots, int32(len(cf.nodes)))
		if len(t.nodes) == 0 {
			// An unfitted tree predicts 0 (DecisionTree.Predict's guard).
			cf.nodes = append(cf.nodes, cnode{feature: -1})
			continue
		}
		cf.flatten(t, 0)
	}
	return cf
}

// flatten copies the subtree rooted at tree node id into the arena in
// preorder and returns nothing; the left child lands at the slot right
// after its parent.
func (cf *CompiledForest) flatten(t *DecisionTree, id int32) {
	n := t.nodes[id]
	self := len(cf.nodes)
	cf.nodes = append(cf.nodes, cnode{feature: int32(n.feature), thresh: n.thresh, value: n.value})
	if n.feature < 0 {
		return
	}
	cf.flatten(t, n.left)
	cf.nodes[self].right = int32(len(cf.nodes))
	cf.flatten(t, n.right)
}

// Predict averages the trees' predictions for one feature vector.  It
// performs no allocations.
func (cf *CompiledForest) Predict(x []float64) float64 {
	var s float64
	nodes := cf.nodes
	for _, root := range cf.roots {
		id := root
		for {
			n := &nodes[id]
			if n.feature < 0 {
				s += n.value
				break
			}
			if x[n.feature] <= n.thresh {
				id++ // left child is adjacent in preorder
			} else {
				id = n.right
			}
		}
	}
	return s / cf.nTrees
}

// Fit implements Regressor: it bootstrap-trains NTrees CART trees across
// GOMAXPROCS goroutines.  Every tree's bootstrap sample and private seed
// are pre-derived from the root RNG in tree order, so the result is
// bit-identical to the historical sequential fit at any parallelism.
func (f *RandomForest) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(f.seed))
	f.trees = make([]*DecisionTree, f.NTrees)
	n := len(x)
	type boot struct {
		bx   [][]float64
		by   []float64
		seed int64
	}
	boots := make([]boot, f.NTrees)
	for k := range boots {
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		boots[k] = boot{bx, by, rng.Int63()}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > f.NTrees {
		workers = f.NTrees
	}
	if workers <= 1 {
		for k := range boots {
			if err := f.fitTree(k, boots[k].bx, boots[k].by, boots[k].seed); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(boots) {
					return
				}
				if err := f.fitTree(k, boots[k].bx, boots[k].by, boots[k].seed); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// fitTree trains tree k on its pre-derived bootstrap sample.
func (f *RandomForest) fitTree(k int, bx [][]float64, by []float64, seed int64) error {
	tr := NewDecisionTree(0, 2)
	tr.rng = rand.New(rand.NewSource(seed))
	if err := tr.Fit(bx, by); err != nil {
		return err
	}
	f.trees[k] = tr
	return nil
}
