package ml

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// cnode is one node of a compiled forest: 16 bytes, so a cache line
// holds four nodes and a root-to-leaf walk touches a fraction of the
// lines the pointer-per-tree layout did.  Leaf prediction values live in
// the parallel CompiledForest.values array — they are only read once per
// finished walk, so keeping them out of cnode halves the hot loop's
// cache traffic.  Trees are flattened in preorder with the left child
// immediately following its parent, so only the right child needs an
// index.
//
// The split threshold is stored order-mapped (orderedBits): an unsigned
// integer compare of mapped values reproduces the float64 ≤ exactly for
// non-NaN operands, and — unlike the float compare, which the compiler
// lowers to an unpredictable data-dependent branch — the integer compare
// materializes as a flag (SETcc) that feeds an arithmetic select, so the
// interleaved walks never stall on a mispredicted split.  Negative-zero
// thresholds are normalized to +0 at compile time so the mapped compare
// matches float semantics on every ±0 combination.  The scalar Predict
// keeps the original float compare via the parallel fthresh array.
//
// Leaves are self-parking: mapped threshold 0 (below every non-NaN
// feature's mapping) and right pointing at the leaf itself, so the
// branchless advance (left on mapped x ≤ thresh, right otherwise) spins a
// finished walker in place and the walk needs no per-step leaf test at
// all: the walker is simply advanced for the tree's full depth.
type cnode struct {
	thresh uint64 // order-mapped split threshold; 0 for leaves
	// fr packs the feature index (low 32 bits) and the right-child arena
	// index (high 32 bits; self for leaves) into one word, so a walk step
	// issues two loads per node instead of three.
	fr uint64
}

// packFR packs a feature index and right-child index into cnode.fr.
func packFR(feature, right int32) uint64 {
	return uint64(uint32(feature)) | uint64(uint32(right))<<32
}

func (n *cnode) featIdx() int32  { return int32(uint32(n.fr)) }
func (n *cnode) rightIdx() int32 { return int32(uint32(n.fr >> 32)) }

// orderedBits maps a float64 to a uint64 whose unsigned order matches the
// float order for all non-NaN values: positive values get the sign bit
// set, negative values are bitwise inverted.  Branchless.
func orderedBits(v float64) uint64 {
	u := math.Float64bits(v)
	return u ^ (uint64(int64(u)>>63) | 0x8000000000000000)
}

// CompiledForest is a RandomForest flattened into one contiguous node
// arena for cache-friendly inference.  It is immutable and safe for
// concurrent use, and Predict is bit-identical to the source forest's
// tree-walking Predict (same per-tree traversal, same summation order,
// same final division).
type CompiledForest struct {
	nodes   []cnode
	values  []float64 // per-node leaf values (0 for internal nodes)
	fthresh []float64 // per-node float thresholds, read only by Predict
	roots   []int32
	depths  []int32 // per-tree root-to-leaf edge count, max over leaves
	order   []int32 // tree indices grouped by depth for chunked walks
	maxFeat int32   // largest feature index any node tests
	nTrees  float64
}

// Compile flattens a fitted forest into a CompiledForest.
func (f *RandomForest) Compile() *CompiledForest {
	cf := &CompiledForest{
		roots:  make([]int32, 0, len(f.trees)),
		depths: make([]int32, 0, len(f.trees)),
		nTrees: float64(len(f.trees)),
	}
	for _, t := range f.trees {
		cf.roots = append(cf.roots, int32(len(cf.nodes)))
		if len(t.nodes) == 0 {
			// An unfitted tree predicts 0 (DecisionTree.Predict's guard).
			cf.addLeaf(0)
			cf.depths = append(cf.depths, 0)
			continue
		}
		cf.depths = append(cf.depths, cf.flatten(t, 0))
	}
	// Walk schedule: trees sorted by (depth, index).  A chunk of
	// similar-depth trees advances for its max member depth, so grouping
	// by depth removes the shallow-tree spin cost; prediction output is
	// unaffected because leaf values are accumulated in tree order, not
	// walk order.
	cf.order = make([]int32, len(cf.roots))
	for i := range cf.order {
		cf.order[i] = int32(i)
	}
	sort.Slice(cf.order, func(a, b int) bool {
		x, y := cf.order[a], cf.order[b]
		if cf.depths[x] != cf.depths[y] {
			return cf.depths[x] < cf.depths[y]
		}
		return x < y
	})
	return cf
}

// NumTrees returns the number of trees in the compiled forest.
func (cf *CompiledForest) NumTrees() int { return len(cf.roots) }

// addLeaf appends a self-parking leaf node carrying value.
func (cf *CompiledForest) addLeaf(value float64) {
	self := int32(len(cf.nodes))
	cf.nodes = append(cf.nodes, cnode{thresh: 0, fr: packFR(0, self)})
	cf.values = append(cf.values, value)
	cf.fthresh = append(cf.fthresh, 0)
}

// flatten copies the subtree rooted at tree node id into the arena in
// preorder and returns its depth in edges; the left child lands at the
// slot right after its parent.
func (cf *CompiledForest) flatten(t *DecisionTree, id int32) int32 {
	n := t.nodes[id]
	self := int32(len(cf.nodes))
	if n.feature < 0 {
		cf.addLeaf(n.value)
		return 0
	}
	// +0.0 normalizes a −0.0 threshold (−0+0 = +0) without touching any
	// other value, keeping the mapped compare exact on ±0.
	cf.nodes = append(cf.nodes, cnode{
		thresh: orderedBits(n.thresh + 0.0),
	})
	cf.values = append(cf.values, 0)
	cf.fthresh = append(cf.fthresh, n.thresh+0.0)
	if int32(n.feature) > cf.maxFeat {
		cf.maxFeat = int32(n.feature)
	}
	dl := cf.flatten(t, n.left)
	cf.nodes[self].fr = packFR(int32(n.feature), int32(len(cf.nodes)))
	dr := cf.flatten(t, n.right)
	if dr > dl {
		dl = dr
	}
	return dl + 1
}

// walkWidth is how many independent root-to-leaf walks the inference
// paths keep in flight at once.  A walk is a chain of dependent loads
// into an arena that typically overflows L1 plus a data-dependent
// left/right select; advancing walkWidth independent chains per round
// lets the memory system overlap the loads, and the select is computed
// arithmetically (SETcc + mask) so no unpredictable branch stalls the
// rounds.  8 saturates the load queues of current cores without spilling
// the walker state off registers/stack.
const walkWidth = 8

// walkWidthWide doubles the in-flight walks for the bulk paths
// (PredictBatch chunks, walkValues full chunks): sixteen chains spill a
// few walker ids to the stack, but with a node arena that misses to
// L2/L3 the extra outstanding loads hide more latency than the spills
// cost.  The narrow paths keep walkWidth.
const walkWidthWide = 16

// nodeAt returns the arena node at id without a bounds check.  Every id a
// walk can reach is a valid arena index by construction: Compile writes
// child indices pointing inside the arena and leaves self-loop, so the
// invariant is established once at compile time, like the netlist
// program's slot access.
func nodeAt(nodes []cnode, id int32) *cnode {
	return (*cnode)(unsafe.Add(unsafe.Pointer(&nodes[0]), uintptr(uint32(id))*unsafe.Sizeof(cnode{})))
}

// featAt loads the order-mapped feature f without a bounds check; callers
// establish len(mx) > cf.maxFeat before entering a walk (leaves test
// feature 0, so mx must be non-empty).
func featAt(mx []uint64, f int32) uint64 {
	return *(*uint64)(unsafe.Add(unsafe.Pointer(&mx[0]), uintptr(uint32(f))*8))
}

// step advances one walker: arithmetic select between the adjacent left
// child and the right index, with no branch.  mx holds order-mapped
// feature values; see cnode for why the compare is exact.  (A two-armed
// `if` form reads as a CMOV candidate but the compiler lowers it to a
// real branch, and the data-dependent mispredicts cost ~1.5× end to end
// — measured, do not "simplify" this back.)
func step(nodes []cnode, mx []uint64, id int32) int32 {
	n := nodeAt(nodes, id)
	fr := n.fr
	var cc int32
	if featAt(mx, int32(uint32(fr))) <= n.thresh {
		cc = 1
	}
	right := int32(uint32(fr >> 32))
	left := id + 1
	return right + (left-right)&(-cc)
}

// Predict averages the trees' predictions for one feature vector, one
// walker per tree in tree order — bit-identical to the source forest's
// tree-walking Predict (same additions, same final division).  It
// performs no allocations.  The batched access patterns the search loops
// use run through PredictBatch and IncrementalPredictor, whose
// interleaved branchless walkers pay off on varied inputs; the scalar
// walk keeps the plain form — with the untransformed float compare
// (fthresh), which branch prediction serves well for the repeated or
// similar probes single-point callers make.  (An interleaved walk8 form
// was measured here too: it wins ~2× on fully varied probes but loses
// ~30-60% on the semi-repeated probes estimator loops actually issue —
// the batch paths are where interleaving pays.)
func (cf *CompiledForest) Predict(x []float64) float64 {
	var s float64
	nodes := cf.nodes
	for _, root := range cf.roots {
		id := root
		for {
			n := &nodes[id]
			if n.rightIdx() == id { // self-parking leaf
				s += cf.values[id]
				break
			}
			if x[n.featIdx()] <= cf.fthresh[id] {
				id++
			} else {
				id = n.rightIdx()
			}
		}
	}
	return s / cf.nTrees
}

// PredictBatch predicts n feature vectors at once, writing prediction i
// to out[i].  x is the struct-of-arrays (feature-major) matrix: x[f*n+i]
// is feature f of point i, with len(x) = numFeatures*n.  The walk is
// trees-outer/points-inner with walkWidthWide points advancing
// concurrently through each tree (independent branchless chains,
// overlapped loads); every point still accumulates its leaf values in
// tree order and divides once at the end, so PredictBatch is
// bit-identical to n scalar Predict calls.  It performs no allocations.
// Like Predict, feature values must not be NaN.
func (cf *CompiledForest) PredictBatch(x []float64, n int, out []float64) {
	out = out[:n]
	nf := int(cf.maxFeat) + 1
	if nf > premapFeatures {
		cf.predictBatchDirect(x, n, out)
		return
	}
	for i := range out {
		out[i] = 0
	}
	// Chunks-outer: order-map each chunk's features once into a
	// point-major stack buffer, then run every tree over the chunk.  The
	// map cost is paid per chunk instead of per node visit.  Walker rows
	// live at a fixed premapFeatures (power-of-two) stride so a visit's
	// feature load is one running byte offset plus the feature index — no
	// per-visit multiply, bounds check, or slice header.
	nodes := cf.nodes
	var mxbuf [walkWidthWide * premapFeatures]uint64
	mxp := unsafe.Pointer(&mxbuf[0])
	for base := 0; base < n; base += walkWidthWide {
		m := n - base
		if m > walkWidthWide {
			m = walkWidthWide
		}
		for f := 0; f < nf; f++ {
			col := x[f*n+base:]
			for j := 0; j < m; j++ {
				mxbuf[j*premapFeatures+f] = orderedBits(col[j])
			}
		}
		acc := out[base : base+m]
		if m == walkWidthWide {
			// Full chunks take the unrolled register walker.
			for t, root := range cf.roots {
				depth := cf.depths[t]
				if depth == 0 { // single-leaf tree: broadcast
					v := cf.values[root]
					for j := range acc {
						acc[j] += v
					}
					continue
				}
				walkChunk16(nodes, cf.values, mxp, root, depth, acc)
			}
			continue
		}
		for t, root := range cf.roots {
			depth := cf.depths[t]
			if depth == 0 { // single-leaf tree: broadcast
				v := cf.values[root]
				for j := range acc {
					acc[j] += v
				}
				continue
			}
			var ids [walkWidthWide]int32
			for j := 0; j < m; j++ {
				ids[j] = root
			}
			for r := int32(0); r < depth; {
				var moved int32
				for k := 0; k < 2 && r < depth; k, r = k+1, r+1 {
					joff := uintptr(0)
					for j := 0; j < m; j++ {
						id := ids[j]
						nd := nodeAt(nodes, id)
						fr := nd.fr
						var cc int32
						if *(*uint64)(unsafe.Add(mxp, joff+uintptr(uint32(fr))*8)) <= nd.thresh {
							cc = 1
						}
						right := int32(uint32(fr >> 32))
						left := id + 1
						id2 := right + (left-right)&(-cc)
						moved |= id2 ^ id
						ids[j] = id2
						joff += rowBytes
					}
				}
				if moved == 0 {
					break
				}
			}
			for j := 0; j < m; j++ {
				acc[j] += cf.values[ids[j]]
			}
		}
	}
	for i := range out {
		out[i] /= cf.nTrees
	}
}

// premapFeatures bounds the per-chunk order-mapped feature buffer
// PredictBatch keeps on the stack; forests testing more features than
// this take the direct (map-per-visit) walk instead.
const premapFeatures = 64

// rowBytes is the byte stride between walker feature rows in the chunk
// buffer — a power of two so row addressing is a shift, not a multiply.
const rowBytes = premapFeatures * 8

// chunkStep advances one batch walker whose order-mapped features live at
// row (one rowBytes-stride row of the chunk buffer): same arithmetic
// select as step, feature load by raw row offset.
func chunkStep(nodes []cnode, row unsafe.Pointer, id int32) int32 {
	n := nodeAt(nodes, id)
	fr := n.fr
	var cc int32
	if *(*uint64)(unsafe.Add(row, uintptr(uint32(fr))*8)) <= n.thresh {
		cc = 1
	}
	right := int32(uint32(fr >> 32))
	left := id + 1
	return right + (left-right)&(-cc)
}

// walkChunk16 advances one tree over a full chunk of sixteen points: all
// sixteen walker ids live in locals (no per-visit array traffic) and each
// walker's feature row is a fixed pointer, so a visit is the bare
// load/compare/select chain.  Rounds advance in pairs between moved
// checks, exactly like walk16; leaves accumulate into acc per point.
func walkChunk16(nodes []cnode, values []float64, mxp unsafe.Pointer, root, depth int32, acc []float64) {
	p0, p1 := mxp, unsafe.Add(mxp, 1*rowBytes)
	p2, p3 := unsafe.Add(mxp, 2*rowBytes), unsafe.Add(mxp, 3*rowBytes)
	p4, p5 := unsafe.Add(mxp, 4*rowBytes), unsafe.Add(mxp, 5*rowBytes)
	p6, p7 := unsafe.Add(mxp, 6*rowBytes), unsafe.Add(mxp, 7*rowBytes)
	p8, p9 := unsafe.Add(mxp, 8*rowBytes), unsafe.Add(mxp, 9*rowBytes)
	pA, pB := unsafe.Add(mxp, 10*rowBytes), unsafe.Add(mxp, 11*rowBytes)
	pC, pD := unsafe.Add(mxp, 12*rowBytes), unsafe.Add(mxp, 13*rowBytes)
	pE, pF := unsafe.Add(mxp, 14*rowBytes), unsafe.Add(mxp, 15*rowBytes)
	id0, id1, id2, id3 := root, root, root, root
	id4, id5, id6, id7 := root, root, root, root
	id8, id9, idA, idB := root, root, root, root
	idC, idD, idE, idF := root, root, root, root
	for r := int32(0); r < depth; {
		s0 := chunkStep(nodes, p0, id0)
		s1 := chunkStep(nodes, p1, id1)
		s2 := chunkStep(nodes, p2, id2)
		s3 := chunkStep(nodes, p3, id3)
		s4 := chunkStep(nodes, p4, id4)
		s5 := chunkStep(nodes, p5, id5)
		s6 := chunkStep(nodes, p6, id6)
		s7 := chunkStep(nodes, p7, id7)
		s8 := chunkStep(nodes, p8, id8)
		s9 := chunkStep(nodes, p9, id9)
		sA := chunkStep(nodes, pA, idA)
		sB := chunkStep(nodes, pB, idB)
		sC := chunkStep(nodes, pC, idC)
		sD := chunkStep(nodes, pD, idD)
		sE := chunkStep(nodes, pE, idE)
		sF := chunkStep(nodes, pF, idF)
		moved := (s0 ^ id0) | (s1 ^ id1) | (s2 ^ id2) | (s3 ^ id3) |
			(s4 ^ id4) | (s5 ^ id5) | (s6 ^ id6) | (s7 ^ id7) |
			(s8 ^ id8) | (s9 ^ id9) | (sA ^ idA) | (sB ^ idB) |
			(sC ^ idC) | (sD ^ idD) | (sE ^ idE) | (sF ^ idF)
		id0, id1, id2, id3 = s0, s1, s2, s3
		id4, id5, id6, id7 = s4, s5, s6, s7
		id8, id9, idA, idB = s8, s9, sA, sB
		idC, idD, idE, idF = sC, sD, sE, sF
		if moved == 0 {
			break
		}
		r++
		if r >= depth {
			break
		}
		id0 = chunkStep(nodes, p0, id0)
		id1 = chunkStep(nodes, p1, id1)
		id2 = chunkStep(nodes, p2, id2)
		id3 = chunkStep(nodes, p3, id3)
		id4 = chunkStep(nodes, p4, id4)
		id5 = chunkStep(nodes, p5, id5)
		id6 = chunkStep(nodes, p6, id6)
		id7 = chunkStep(nodes, p7, id7)
		id8 = chunkStep(nodes, p8, id8)
		id9 = chunkStep(nodes, p9, id9)
		idA = chunkStep(nodes, pA, idA)
		idB = chunkStep(nodes, pB, idB)
		idC = chunkStep(nodes, pC, idC)
		idD = chunkStep(nodes, pD, idD)
		idE = chunkStep(nodes, pE, idE)
		idF = chunkStep(nodes, pF, idF)
		r++
	}
	acc[0] += values[id0]
	acc[1] += values[id1]
	acc[2] += values[id2]
	acc[3] += values[id3]
	acc[4] += values[id4]
	acc[5] += values[id5]
	acc[6] += values[id6]
	acc[7] += values[id7]
	acc[8] += values[id8]
	acc[9] += values[id9]
	acc[10] += values[idA]
	acc[11] += values[idB]
	acc[12] += values[idC]
	acc[13] += values[idD]
	acc[14] += values[idE]
	acc[15] += values[idF]
}

// predictBatchDirect is the PredictBatch walk without the premapped
// feature buffer, for forests too feature-wide for the stack buffer.
// Identical arithmetic, feature values mapped at every visit.
func (cf *CompiledForest) predictBatchDirect(x []float64, n int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	nodes := cf.nodes
	for t, root := range cf.roots {
		depth := cf.depths[t]
		if depth == 0 { // single-leaf tree: broadcast
			v := cf.values[root]
			for i := range out {
				out[i] += v
			}
			continue
		}
		for base := 0; base < n; base += walkWidthWide {
			m := n - base
			if m > walkWidthWide {
				m = walkWidthWide
			}
			var ids [walkWidthWide]int32
			for j := 0; j < m; j++ {
				ids[j] = root
			}
			for r := int32(0); r < depth; {
				var moved int32
				for k := 0; k < 2 && r < depth; k, r = k+1, r+1 {
					for j := 0; j < m; j++ {
						nd := &nodes[ids[j]]
						var cc int32
						if orderedBits(x[int(nd.featIdx())*n+base+j]) <= nd.thresh {
							cc = 1
						}
						right := nd.rightIdx()
						left := ids[j] + 1
						id2 := right + (left-right)&(-cc)
						moved |= id2 ^ ids[j]
						ids[j] = id2
					}
				}
				if moved == 0 {
					break
				}
			}
			for j := 0; j < m; j++ {
				out[base+j] += cf.values[ids[j]]
			}
		}
	}
	for i := range out {
		out[i] /= cf.nTrees
	}
}

// Fit implements Regressor: it bootstrap-trains NTrees CART trees across
// GOMAXPROCS goroutines.  Every tree's bootstrap sample and private seed
// are pre-derived from the root RNG in tree order, so the result is
// bit-identical to the historical sequential fit at any parallelism.
func (f *RandomForest) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(f.seed))
	f.trees = make([]*DecisionTree, f.NTrees)
	n := len(x)
	type boot struct {
		bx   [][]float64
		by   []float64
		seed int64
	}
	boots := make([]boot, f.NTrees)
	for k := range boots {
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		boots[k] = boot{bx, by, rng.Int63()}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > f.NTrees {
		workers = f.NTrees
	}
	if workers <= 1 {
		for k := range boots {
			if err := f.fitTree(k, boots[k].bx, boots[k].by, boots[k].seed); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(boots) {
					return
				}
				if err := f.fitTree(k, boots[k].bx, boots[k].by, boots[k].seed); err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// fitTree trains tree k on its pre-derived bootstrap sample.
func (f *RandomForest) fitTree(k int, bx [][]float64, by []float64, seed int64) error {
	tr := NewDecisionTree(0, 2)
	tr.rng = rand.New(rand.NewSource(seed))
	if err := tr.Fit(bx, by); err != nil {
		return err
	}
	f.trees[k] = tr
	return nil
}
