package ml

import "math/rand"

// DecisionTree is a CART regression tree grown by greedy variance
// reduction.  MaxDepth 0 means unbounded (scikit-learn's default), which
// memorizes the training set — the 100% train / ~95% test fidelity
// signature in the paper's Table 3.
type DecisionTree struct {
	MaxDepth        int
	MinSamplesSplit int

	// MaxFeatures limits the features examined per split (0 = all);
	// sampled with rng when set — used by the ensemble methods.
	MaxFeatures int
	rng         *rand.Rand

	nodes []treeNode
}

type treeNode struct {
	feature int // -1 for leaves
	thresh  float64
	left    int32
	right   int32
	value   float64 // leaf prediction (weighted mean)
}

// NewDecisionTree returns a CART regression tree; maxDepth 0 = unbounded.
func NewDecisionTree(maxDepth, minSamplesSplit int) *DecisionTree {
	if minSamplesSplit < 2 {
		minSamplesSplit = 2
	}
	return &DecisionTree{MaxDepth: maxDepth, MinSamplesSplit: minSamplesSplit}
}

// Fit implements Regressor; an optional per-sample weight variant is used
// by AdaBoost via FitWeighted.
func (t *DecisionTree) Fit(x [][]float64, y []float64) error {
	return t.FitWeighted(x, y, nil)
}

// FitWeighted fits with per-sample weights (nil = uniform).
func (t *DecisionTree) FitWeighted(x [][]float64, y []float64, w []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	if w == nil {
		w = make([]float64, len(y))
		for i := range w {
			w[i] = 1
		}
	}
	t.nodes = t.nodes[:0]
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.build(x, y, w, idx, 1)
	return nil
}

// build grows the subtree over idx and returns its node id.
func (t *DecisionTree) build(x [][]float64, y, w []float64, idx []int, depth int) int32 {
	var sw, swy float64
	for _, i := range idx {
		sw += w[i]
		swy += w[i] * y[i]
	}
	mean := swy / sw
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, value: mean})

	if len(idx) < t.MinSamplesSplit || (t.MaxDepth > 0 && depth > t.MaxDepth) {
		return id
	}
	// Parent impurity (weighted SSE around the mean).
	var sse float64
	for _, i := range idx {
		d := y[i] - mean
		sse += w[i] * d * d
	}
	if sse <= 1e-12 {
		return id
	}

	d := len(x[0])
	features := make([]int, d)
	for j := range features {
		features[j] = j
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < d && t.rng != nil {
		t.rng.Shuffle(d, func(a, b int) { features[a], features[b] = features[b], features[a] })
		features = features[:t.MaxFeatures]
	}

	bestGain := 1e-12
	bestFeat, bestPos := -1, -1
	var bestOrder []int
	vals := make([]float64, len(idx))
	for _, f := range features {
		for k, i := range idx {
			vals[k] = x[i][f]
		}
		order := argsortAsc(vals)
		// Prefix sums over the sorted order.
		var lw, lwy float64
		rw, rwy := sw, swy
		for pos := 0; pos < len(order)-1; pos++ {
			i := idx[order[pos]]
			lw += w[i]
			lwy += w[i] * y[i]
			rw -= w[i]
			rwy -= w[i] * y[i]
			if vals[order[pos]] == vals[order[pos+1]] {
				continue // cannot split between equal values
			}
			// Gain = parent SSE − child SSEs; computable from sums since
			// SSE = Σwy² − (Σwy)²/Σw and Σwy² cancels.
			gain := lwy*lwy/lw + rwy*rwy/rw - swy*swy/sw
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestPos = pos
				bestOrder = append(bestOrder[:0], order...)
			}
		}
	}
	if bestFeat < 0 {
		return id
	}
	thresh := (x[idx[bestOrder[bestPos]]][bestFeat] + x[idx[bestOrder[bestPos+1]]][bestFeat]) / 2
	left := make([]int, 0, bestPos+1)
	right := make([]int, 0, len(idx)-bestPos-1)
	for pos, o := range bestOrder {
		if pos <= bestPos {
			left = append(left, idx[o])
		} else {
			right = append(right, idx[o])
		}
	}
	l := t.build(x, y, w, left, depth+1)
	r := t.build(x, y, w, right, depth+1)
	t.nodes[id].feature = bestFeat
	t.nodes[id].thresh = thresh
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

// Predict implements Regressor.
func (t *DecisionTree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	id := int32(0)
	for {
		n := t.nodes[id]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			id = n.left
		} else {
			id = n.right
		}
	}
}

// RandomForest is a bagging ensemble of unpruned CART trees (100 trees in
// the paper) averaging their predictions.
type RandomForest struct {
	NTrees int
	seed   int64
	trees  []*DecisionTree
}

// NewRandomForest returns a forest with n bootstrap-trained trees.
func NewRandomForest(n int, seed int64) *RandomForest {
	return &RandomForest{NTrees: n, seed: seed}
}

// Fit implements Regressor; see forest.go for the parallel implementation
// (bit-identical to sequential fitting at any parallelism).

// Predict implements Regressor.
func (f *RandomForest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}
