package ml

import (
	"math"
	"math/rand"
)

// MLP is a multilayer perceptron regressor: ReLU hidden layers trained by
// mini-batch Adam on the squared loss (scikit-learn defaults: one hidden
// layer of 100 units, lr 1e-3, 200 epochs, batch 32… scaled-down epochs
// are configurable).  Inputs are standardized internally; targets are not.
type MLP struct {
	Hidden []int
	Epochs int
	LR     float64
	Batch  int
	seed   int64

	scaler  *Scaler
	weights [][]float64 // per layer: (in+1)×out, row-major with bias row
	dims    []int
}

// NewMLP returns an MLP with the given hidden layer sizes and epoch count.
func NewMLP(hidden []int, epochs int, seed int64) *MLP {
	return &MLP{Hidden: hidden, Epochs: epochs, LR: 1e-3, Batch: 32, seed: seed}
}

// Fit implements Regressor.
func (m *MLP) Fit(x [][]float64, y []float64) error {
	if err := checkXY(x, y); err != nil {
		return err
	}
	m.scaler = FitScaler(x)
	xs := m.scaler.Transform(x)
	d := len(xs[0])
	m.dims = append(append([]int{d}, m.Hidden...), 1)
	rng := rand.New(rand.NewSource(m.seed))

	layers := len(m.dims) - 1
	m.weights = make([][]float64, layers)
	for l := 0; l < layers; l++ {
		in, out := m.dims[l], m.dims[l+1]
		w := make([]float64, (in+1)*out)
		// Glorot-uniform initialization.
		limit := math.Sqrt(6.0 / float64(in+out))
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * limit
		}
		m.weights[l] = w
	}
	// Adam state.
	mom := make([][]float64, layers)
	vel := make([][]float64, layers)
	grad := make([][]float64, layers)
	for l := range mom {
		mom[l] = make([]float64, len(m.weights[l]))
		vel[l] = make([]float64, len(m.weights[l]))
		grad[l] = make([]float64, len(m.weights[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	n := len(xs)
	acts := make([][]float64, layers+1)
	deltas := make([][]float64, layers+1)
	for ep := 0; ep < m.Epochs; ep++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += m.Batch {
			end := start + m.Batch
			if end > n {
				end = n
			}
			for l := range grad {
				for i := range grad[l] {
					grad[l][i] = 0
				}
			}
			for _, pi := range perm[start:end] {
				// Forward.
				acts[0] = xs[pi]
				for l := 0; l < layers; l++ {
					in, out := m.dims[l], m.dims[l+1]
					a := make([]float64, out)
					w := m.weights[l]
					for o := 0; o < out; o++ {
						s := w[in*out+o] // bias row at the end
						for i2 := 0; i2 < in; i2++ {
							s += w[i2*out+o] * acts[l][i2]
						}
						if l < layers-1 && s < 0 {
							s = 0 // ReLU
						}
						a[o] = s
					}
					acts[l+1] = a
				}
				// Backward (squared loss).
				deltas[layers] = []float64{acts[layers][0] - y[pi]}
				for l := layers - 1; l >= 0; l-- {
					in, out := m.dims[l], m.dims[l+1]
					w := m.weights[l]
					g := grad[l]
					dl := deltas[l+1]
					for o := 0; o < out; o++ {
						do := dl[o]
						if do == 0 {
							continue
						}
						for i2 := 0; i2 < in; i2++ {
							g[i2*out+o] += do * acts[l][i2]
						}
						g[in*out+o] += do
					}
					if l > 0 {
						prev := make([]float64, in)
						for i2 := 0; i2 < in; i2++ {
							if acts[l][i2] <= 0 { // ReLU derivative
								continue
							}
							s := 0.0
							for o := 0; o < out; o++ {
								s += w[i2*out+o] * dl[o]
							}
							prev[i2] = s
						}
						deltas[l] = prev
					}
				}
			}
			// Adam update.
			step++
			bs := float64(end - start)
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for l := range m.weights {
				w, g, mo, ve := m.weights[l], grad[l], mom[l], vel[l]
				for i := range w {
					gi := g[i] / bs
					mo[i] = beta1*mo[i] + (1-beta1)*gi
					ve[i] = beta2*ve[i] + (1-beta2)*gi*gi
					w[i] -= m.LR * (mo[i] / bc1) / (math.Sqrt(ve[i]/bc2) + eps)
				}
			}
		}
	}
	return nil
}

// Predict implements Regressor.
func (m *MLP) Predict(q []float64) float64 {
	a := m.scaler.TransformRow(q)
	layers := len(m.dims) - 1
	for l := 0; l < layers; l++ {
		in, out := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		next := make([]float64, out)
		for o := 0; o < out; o++ {
			s := w[in*out+o]
			for i := 0; i < in; i++ {
				s += w[i*out+o] * a[i]
			}
			if l < layers-1 && s < 0 {
				s = 0
			}
			next[o] = s
		}
		a = next
	}
	return a[0]
}
