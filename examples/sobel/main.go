// Sobel case study: the paper's §4.1 walk-through — profile the detector,
// reduce the library, compare learning engines by fidelity (Table 3
// style), then contrast the proposed hill-climbing search against random
// sampling at equal budgets (Table 4 style).
//
//	go run ./examples/sobel
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"autoax"
)

func main() {
	lib, err := autoax.BuildLibrary([]autoax.LibrarySpec{
		{Op: autoax.OpAdd(8), Count: 80},
		{Op: autoax.OpAdd(9), Count: 80},
		{Op: autoax.OpSub(10), Count: 60},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	images := autoax.BenchmarkImages(3, 64, 48, 7)
	pipe, err := autoax.NewPipeline(autoax.Sobel(), lib, images, autoax.Config{
		TrainConfigs: 200, TestConfigs: 150, SearchEvals: 20000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — library pre-processing.
	if err := pipe.Reduce(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("reduced libraries per operation:")
	for i, rl := range pipe.Space {
		id := pipe.App.Graph.OpNodes()[i]
		fmt.Printf("  %-5s (%s): %3d of %d circuits kept\n",
			pipe.App.Graph.Nodes[id].Name, pipe.App.Graph.Nodes[id].Op,
			len(rl), len(lib.For(pipe.App.Graph.Nodes[id].Op)))
	}

	// Step 2 — model construction; compare a few engines by fidelity.
	if err := pipe.GenerateSamples(); err != nil {
		log.Fatal(err)
	}
	xqTr, yqTr, _, _ := autoax.BuildTrainingData(pipe.Space, pipe.TrainCfgs, pipe.TrainRes)
	xqTe, yqTe, _, _ := autoax.BuildTrainingData(pipe.Space, pipe.TestCfgs, pipe.TestRes)
	type scored struct {
		name string
		fid  float64
	}
	var board []scored
	for _, name := range []string{"Random Forest", "Decision Tree", "Bayesian Ridge", "Stochastic Gradient Descent"} {
		spec, err := autoax.EngineByName(name)
		if err != nil {
			log.Fatal(err)
		}
		r := spec.New(1)
		if err := r.Fit(xqTr, yqTr); err != nil {
			log.Fatal(err)
		}
		board = append(board, scored{name, autoax.Fidelity(autoax.PredictAll(r, xqTe), yqTe)})
	}
	sort.Slice(board, func(i, j int) bool { return board[i].fid > board[j].fid })
	fmt.Println("\nSSIM-model test fidelity by engine:")
	for _, b := range board {
		fmt.Printf("  %-28s %.1f%%\n", b.name, 100*b.fid)
	}

	// Step 3 — model-based DSE: proposed vs random sampling.
	if err := pipe.Train(); err != nil {
		log.Fatal(err)
	}
	est := pipe.Models.Estimator()
	for _, budget := range []int{1000, 10000} {
		hc := autoax.HillClimb(pipe.Space, est, autoax.SearchOptions{Evaluations: budget, Seed: 5})
		rs := autoax.RandomSearch(pipe.Space, est, autoax.SearchOptions{Evaluations: budget, Seed: 5})
		d := autoax.FrontDistances(rs.Points(), hc.Points())
		fmt.Printf("\nbudget %6d: proposed front %3d vs random front %3d (random sits %.4f avg away)\n",
			budget, hc.Len(), rs.Len(), d.ToAvg)
	}

	// Final precise verification of the explored front.
	if err := pipe.Run(); err != nil {
		log.Fatal(err)
	}
	_, res := pipe.FrontResults()
	minS, maxS := res[0].SSIM, res[0].SSIM
	minA, maxA := res[0].Area, res[0].Area
	for _, r := range res {
		minS, maxS = math.Min(minS, r.SSIM), math.Max(maxS, r.SSIM)
		minA, maxA = math.Min(minA, r.Area), math.Max(maxA, r.Area)
	}
	fmt.Printf("\nfinal verified front: %d designs, SSIM %.4f…%.4f, area %.0f…%.0f µm²\n",
		len(res), minS, maxS, minA, maxA)
}
