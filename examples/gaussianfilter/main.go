// Gaussian filter case study: approximate the generic (variable-
// coefficient) Gaussian filter — 9 multipliers + an 8-adder tree, the
// paper's hardest benchmark (a 10⁶³-configuration space at full library
// scale) — and compare the resulting front against uniform selection.
//
//	go run ./examples/gaussianfilter
package main

import (
	"fmt"
	"log"

	"autoax"
)

func main() {
	// The generic GF needs 8-bit multipliers and 16-bit adders.
	lib, err := autoax.BuildLibrary([]autoax.LibrarySpec{
		{Op: autoax.OpMul(8), Count: 80},
		{Op: autoax.OpAdd(16), Count: 60},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// QoR workload: Gaussian kernels with σ ∈ [0.3, 0.8] (the paper uses
	// 50 kernels × 4 images; scaled down here).
	kernels := autoax.GenericGFKernels(6)
	app := autoax.GenericGF(kernels)
	images := autoax.BenchmarkImages(2, 48, 40, 11)

	pipe, err := autoax.NewPipeline(app, lib, images, autoax.Config{
		TrainConfigs: 120, TestConfigs: 60, SearchEvals: 15000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("17-operation accelerator, reduced space %.3g configurations\n", pipe.Space.NumConfigs())
	fmt.Printf("model fidelity: QoR %.0f%%, hardware %.0f%%\n", 100*pipe.QoRFidelity, 100*pipe.HWFidelity)

	_, proposed := pipe.FrontResults()
	fmt.Printf("\nproposed front (%d designs):\n", len(proposed))
	fmt.Println("  SSIM     area(µm²)  energy(fJ/px)")
	for _, r := range proposed {
		fmt.Printf("  %.5f  %9.1f  %12.1f\n", r.SSIM, r.Area, r.Energy)
	}

	// The manual baseline: equalized relative WMED across all operations.
	ev, err := autoax.NewEvaluator(app, images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nuniform-selection baseline:")
	fmt.Println("  SSIM     area(µm²)")
	for _, cfg := range autoax.UniformSelection(pipe.Space, 8) {
		r, err := ev.Evaluate(pipe.Space.Circuits(cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.5f  %9.1f\n", r.SSIM, r.Area)
	}
	fmt.Println("\n(the proposed front dominates: uniform selection cannot exploit")
	fmt.Println(" per-operation error sensitivity, matching the paper's Figure 5)")
}
