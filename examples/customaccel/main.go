// Custom accelerator, local and over the wire: autoAx is not limited to
// the paper's three case studies, and since the accelerator wire format
// it is not limited to in-process use either.  This example defines a new
// image operator — a neighbourhood-difference edge detector
// out = |p11 − (p01+p10+p12+p21)/4| — with the public graph API, then
//
//  1. serializes it to the canonical JSON wire format (accelerator.json),
//
//  2. runs the methodology on it in-process,
//
//  3. starts an in-process job service, submits the *serialized* graph to
//     POST /v1/pipelines through the typed client SDK, and
//
//  4. checks the Pareto front from the service is identical to the
//     in-process one, and that a structurally identical resubmission
//     (every node renamed) is served from the content-addressed cache.
//
//     go run ./examples/customaccel
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"autoax"
)

// Budgets shared by the local run and the service request — they must
// agree for the fronts to be comparable.
const (
	libCount                  = 30 // circuits per operation instance
	trainN, testN             = 60, 40
	evalsN, stagnationN       = 4000, 50
	imgN, imgW, imgH          = 2, 48, 32
	seed                int64 = 1
)

// buildApp wires the custom dataflow graph and its window binding.
func buildApp() *autoax.ImageApp {
	g := autoax.NewGraph("neighbordiff")
	p01 := g.Input("p01", 8) // north
	p10 := g.Input("p10", 8) // west
	p12 := g.Input("p12", 8) // east
	p21 := g.Input("p21", 8) // south
	p11 := g.Input("p11", 8) // centre

	s1 := g.Add("add1", 8, p01, p21) // 9 bits
	s2 := g.Add("add2", 8, p10, p12) // 9 bits
	s3 := g.Add("add3", 9, s1, s2)   // 10 bits
	avg := g.ShiftR("avg", s3, 2)    // 8 bits: (Σ neighbours)/4
	d := g.Sub("sub1", 8, p11, avg)  // 9 bits, two's complement
	g.Output(g.Clamp("sat", g.Abs("abs", d), 8))

	return &autoax.ImageApp{
		Name:  "neighbordiff",
		Graph: g,
		Taps: []autoax.WindowTap{
			{DX: 0, DY: -1}, {DX: -1, DY: 0}, {DX: 1, DY: 0}, {DX: 0, DY: 1}, {DX: 0, DY: 0},
		},
		Sims: [][]uint64{{}},
	}
}

// librarySpecs is the operation mix both the local build and the service
// request ask for — note sub8, an instance none of the paper's apps use.
func librarySpecs() []autoax.LibrarySpec {
	return []autoax.LibrarySpec{
		{Op: autoax.OpAdd(8), Count: libCount},
		{Op: autoax.OpAdd(9), Count: libCount},
		{Op: autoax.OpSub(8), Count: libCount},
	}
}

func main() {
	app := buildApp()
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom accelerator operation mix:")
	for op, n := range app.Graph.OpCounts() {
		fmt.Printf("  %s × %d\n", op, n)
	}

	// 1. Serialize to the canonical wire format: this file is everything a
	// remote service needs to evaluate the accelerator (feed it to
	// `autoax -graph FILE pipeline` or `autoax -graph FILE submit`).
	wire, err := app.MarshalWire()
	if err != nil {
		log.Fatal(err)
	}
	wirePath := filepath.Join(os.TempDir(), "accelerator.json")
	if err := os.WriteFile(wirePath, wire, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwire format: %d bytes → %s (canonical hash %.16s…)\n",
		len(wire), wirePath, app.CanonicalHash())

	// 2. In-process run of the methodology.
	lib, err := autoax.BuildLibrary(librarySpecs(), seed)
	if err != nil {
		log.Fatal(err)
	}
	images := autoax.BenchmarkImages(imgN, imgW, imgH, seed+1000)
	pipe, err := autoax.NewPipeline(app, lib, images, autoax.Config{
		TrainConfigs: trainN, TestConfigs: testN,
		SearchEvals: evalsN, Stagnation: stagnationN, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Run(); err != nil {
		log.Fatal(err)
	}
	localCfgs, localRes := pipe.FrontResults()
	fmt.Printf("\nin-process run: reduced space %.3g configurations, front %d, fidelity QoR %.0f%% / HW %.0f%%\n",
		pipe.Space.NumConfigs(), len(localRes), 100*pipe.QoRFidelity, 100*pipe.HWFidelity)

	// 3. The same accelerator over the wire: an in-process job service and
	// the typed client SDK.
	srv, err := autoax.NewServer(autoax.ServerOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	client := autoax.NewClient("http://" + ln.Addr().String())

	var wireApp autoax.WireApp
	if err := json.Unmarshal(wire, &wireApp); err != nil {
		log.Fatal(err)
	}
	req := autoax.ServerPipelineRequest{
		Accelerator: &wireApp,
		Library: autoax.ServerLibraryRequest{
			Specs: []autoax.ServerLibrarySpec{
				{Op: "add8", Count: libCount},
				{Op: "add9", Count: libCount},
				{Op: "sub8", Count: libCount},
			},
			Seed: seed,
		},
		Images:       autoax.ImageSpec{Count: imgN, Width: imgW, Height: imgH, Seed: seed + 1000},
		TrainConfigs: trainN, TestConfigs: testN,
		SearchEvals: evalsN, Stagnation: stagnationN, Seed: seed,
	}
	job, err := client.SubmitPipeline(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted %s to the job service, waiting…\n", job.ID)
	done, err := client.Jobs.Wait(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	remote, err := autoax.PipelineResultOf(done)
	if err != nil {
		log.Fatal(err)
	}

	// 4a. The service front must be identical to the in-process one.
	if len(remote.Front) != len(localRes) {
		log.Fatalf("front size mismatch: service %d vs local %d", len(remote.Front), len(localRes))
	}
	for i, f := range remote.Front {
		if f.SSIM != localRes[i].SSIM || f.Area != localRes[i].Area || f.Energy != localRes[i].Energy {
			log.Fatalf("front entry %d differs: service %+v vs local %+v / %v",
				i, f, localRes[i], localCfgs[i])
		}
	}
	fmt.Printf("service front identical to the in-process run (%d entries)\n", len(remote.Front))
	fmt.Println("  SSIM     area(µm²)  energy(fJ/px)")
	for _, f := range remote.Front {
		fmt.Printf("  %.5f  %9.1f  %12.1f\n", f.SSIM, f.Area, f.Energy)
	}

	// 4b. Content addressing is structural: renaming every node must not
	// change the cache identity, so the resubmission is a cache hit.
	renamed := wireApp
	renamed.Name = "totally-different-name"
	renamed.Graph.Name = "same-structure"
	renamed.Graph.Nodes = append([]autoax.WireNode(nil), wireApp.Graph.Nodes...)
	for i := range renamed.Graph.Nodes {
		renamed.Graph.Nodes[i].Name = fmt.Sprintf("node_%d", i)
	}
	req2 := req
	req2.Accelerator = &renamed
	job2, err := client.SubmitPipeline(ctx, req2)
	if err != nil {
		log.Fatal(err)
	}
	done2, err := client.Jobs.Wait(ctx, job2.ID)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := autoax.PipelineResultOf(done2); err != nil {
		log.Fatal(err)
	}
	if !done2.Cached {
		log.Fatal("renamed-but-identical accelerator was recomputed instead of cache-served")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrenamed resubmission served from cache (hits %d, coalesced %d)\n",
		stats.Cache.Hits, stats.Cache.Coalesced)
}
