// Custom accelerator: autoAx is not limited to the paper's three case
// studies.  This example defines a new image operator — a neighbourhood-
// difference edge detector out = |p11 − (p01+p10+p12+p21)/4| — from
// scratch with the public graph API, builds a library for its operation
// mix (including an 8-bit subtractor, which none of the paper's apps use),
// and runs the methodology on it.
//
//	go run ./examples/customaccel
package main

import (
	"fmt"
	"log"

	"autoax"
)

// buildApp wires the custom dataflow graph and its window binding.
func buildApp() *autoax.ImageApp {
	g := autoax.NewGraph("neighbordiff")
	p01 := g.Input("p01", 8) // north
	p10 := g.Input("p10", 8) // west
	p12 := g.Input("p12", 8) // east
	p21 := g.Input("p21", 8) // south
	p11 := g.Input("p11", 8) // centre

	s1 := g.Add("add1", 8, p01, p21) // 9 bits
	s2 := g.Add("add2", 8, p10, p12) // 9 bits
	s3 := g.Add("add3", 9, s1, s2)   // 10 bits
	avg := g.ShiftR("avg", s3, 2)    // 8 bits: (Σ neighbours)/4
	d := g.Sub("sub1", 8, p11, avg)  // 9 bits, two's complement
	g.Output(g.Clamp("sat", g.Abs("abs", d), 8))

	return &autoax.ImageApp{
		Name:  "neighbordiff",
		Graph: g,
		Taps: []autoax.WindowTap{
			{DX: 0, DY: -1}, {DX: -1, DY: 0}, {DX: 1, DY: 0}, {DX: 0, DY: 1}, {DX: 0, DY: 0},
		},
		Sims: [][]uint64{{}},
	}
}

func main() {
	app := buildApp()
	if err := app.Validate(); err != nil {
		log.Fatal(err)
	}
	counts := app.Graph.OpCounts()
	fmt.Println("custom accelerator operation mix:")
	for op, n := range counts {
		fmt.Printf("  %s × %d\n", op, n)
	}

	// The library needs exactly this operation mix — note sub8, an
	// instance none of the built-in case studies use.
	lib, err := autoax.BuildLibrary([]autoax.LibrarySpec{
		{Op: autoax.OpAdd(8), Count: 60},
		{Op: autoax.OpAdd(9), Count: 60},
		{Op: autoax.OpSub(8), Count: 50},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}

	images := autoax.BenchmarkImages(3, 64, 48, 21)
	pipe, err := autoax.NewPipeline(app, lib, images, autoax.Config{
		TrainConfigs: 150, TestConfigs: 100, SearchEvals: 10000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreduced space: %.3g configurations, fidelity QoR %.0f%% / HW %.0f%%\n",
		pipe.Space.NumConfigs(), 100*pipe.QoRFidelity, 100*pipe.HWFidelity)
	_, res := pipe.FrontResults()
	fmt.Printf("final front: %d approximate implementations\n", len(res))
	fmt.Println("  SSIM     area(µm²)  energy(fJ/px)")
	for _, r := range res {
		fmt.Printf("  %.5f  %9.1f  %12.1f\n", r.SSIM, r.Area, r.Energy)
	}
}
