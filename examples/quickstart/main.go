// Quickstart: run the complete autoAx methodology on the Sobel edge
// detector with a small generated library, and print the final Pareto
// front of approximate implementations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"autoax"
)

func main() {
	// 1. A library of characterized approximate circuits for the three
	//    operation instances the Sobel detector uses (Table 1).
	lib, err := autoax.BuildLibrary([]autoax.LibrarySpec{
		{Op: autoax.OpAdd(8), Count: 60},
		{Op: autoax.OpAdd(9), Count: 60},
		{Op: autoax.OpSub(10), Count: 50},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d characterized circuits\n", lib.Size())

	// 2. Benchmark data: synthetic grayscale images with natural-image
	//    statistics (stand-in for the Berkeley segmentation dataset).
	images := autoax.BenchmarkImages(3, 64, 48, 7)

	// 3. The methodology: profile → reduce → learn models → explore →
	//    verify.  Budgets here are quickstart-sized; see DefaultConfig for
	//    paper-like settings.
	cfg := autoax.Config{
		TrainConfigs: 150,
		TestConfigs:  100,
		SearchEvals:  10000,
		Seed:         1,
	}
	pipe, err := autoax.NewPipeline(autoax.Sobel(), lib, images, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("reduced space: %.3g configurations\n", pipe.Space.NumConfigs())
	fmt.Printf("model fidelity: QoR %.0f%%, hardware %.0f%%\n",
		100*pipe.QoRFidelity, 100*pipe.HWFidelity)
	fmt.Printf("pseudo Pareto: %d configurations, final front: %d\n\n",
		pipe.Pseudo.Len(), len(pipe.FinalFront))

	_, results := pipe.FrontResults()
	fmt.Println("final Pareto front (quality ↔ hardware cost):")
	fmt.Println("  SSIM     area(µm²)  energy(fJ/px)")
	for _, r := range results {
		fmt.Printf("  %.5f  %9.1f  %12.1f\n", r.SSIM, r.Area, r.Energy)
	}
}
