#!/usr/bin/env bash
# bench.sh — run the key autoax benchmarks and emit machine-readable JSON.
#
# Usage:
#   scripts/bench.sh                          # print flat JSON to stdout
#   scripts/bench.sh -o run.json              # write flat JSON
#   scripts/bench.sh -baseline before.json -o BENCH_PR4.json
#                                             # before/after/speedup report
#
# Environment:
#   BENCH_COUNT   repetitions per benchmark (default 3; fastest run kept)
#   BENCH_FILTER  -bench regexp override (default: the benchmarks tracked
#                 in BENCH_PR4.json)
#
# The trajectory benchmarks cover both paper inner loops: precise
# configuration analysis (NetlistEval, NetlistEvalBlock, Characterize,
# PreciseEvaluation, SSIM) and model-based estimation (ModelEstimate,
# CompiledForestPredict, HillClimb1k, NSGA2Gen1k — the two search
# engines), plus RandomForestFit for training and the observability hot
# path (ObsCounter, ObsHistogram, HillClimb1kObserved — compare against
# HillClimb1k for the instrumented overhead).
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER=${BENCH_FILTER:-'^(BenchmarkNetlistEval|BenchmarkNetlistEvalBlock|BenchmarkNetlistEvalBlockWide|BenchmarkCharacterize|BenchmarkPreciseEvaluation|BenchmarkEvaluateAllCached|BenchmarkProgramDiskCacheWarm|BenchmarkHillClimb1k|BenchmarkHillClimb1kObserved|BenchmarkNSGA2Gen1k|BenchmarkRandomSearch1k|BenchmarkModelEstimate|BenchmarkModelEstimateBatch|BenchmarkCompiledForestPredict|BenchmarkPredictVaried|BenchmarkPredictBatchVaried|BenchmarkPredictBatchWide|BenchmarkSSIM|BenchmarkSimplify|BenchmarkProfile|BenchmarkRandomForestFit|BenchmarkObsCounter|BenchmarkObsHistogram)$'}
COUNT=${BENCH_COUNT:-3}

# ./internal/ml carries the forest-walker benchmarks (PredictVaried,
# PredictBatchVaried, PredictBatchWide); everything else lives in the
# root package.
go test -run '^$' -bench "$FILTER" -benchmem -count "$COUNT" . ./internal/ml |
	go run ./scripts/benchjson "$@"
