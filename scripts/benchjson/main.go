// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into machine-readable JSON, optionally merging a baseline run into
// a before/after report with per-benchmark speedups, or gating CI on a
// committed reference.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./scripts/benchjson -o bench.json
//	... | go run ./scripts/benchjson -baseline before.json -o BENCH_PR4.json
//	... | go run ./scripts/benchjson -check BENCH_PR5.json -max-regress 20
//
// Without -baseline the output is a flat run: {"benchmarks": {name:
// {ns_per_op, b_per_op, allocs_per_op}}}.  With -baseline (a flat run
// produced by this tool) the output holds "before", "after" and "speedup"
// (before.ns_per_op / after.ns_per_op, for benchmarks present in both).
//
// With -check the run read from stdin is compared against a committed
// reference (a flat run or a report, whose "after" section is used): the
// command exits non-zero when any benchmark present in both regresses by
// more than -max-regress× the reference ns/op.  The threshold must absorb
// both CI noise and machine differences, so it is deliberately generous —
// the gate catches complexity-class regressions (an accidental quadratic
// scan, a lost fast path), not percentage drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measured cost.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Run is a flat benchmark run.
type Run struct {
	Go         string             `json:"go,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Report is the before/after comparison emitted with -baseline.
type Report struct {
	Before  map[string]Metrics `json:"before"`
	After   map[string]Metrics `json:"after"`
	Speedup map[string]float64 `json:"speedup"`
	CPU     string             `json:"cpu,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkNetlistEval-8   1000000   1048 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	baseline := flag.String("baseline", "", "flat-run JSON to compare against (emits before/after/speedup)")
	check := flag.String("check", "", "reference JSON (flat run or report) to gate against; exit 1 on regression")
	maxRegress := flag.Float64("max-regress", 5, "with -check: fail when ns/op exceeds this multiple of the reference")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	run := Run{Benchmarks: map[string]Metrics{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		// Echo so the human sees the run too — on stderr, so the default
		// JSON-to-stdout mode stays pipeable.
		fmt.Fprintln(os.Stderr, line)
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		var met Metrics
		met.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			met.BPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			met.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		// Repeated -count runs: keep the fastest, the conventional
		// benchmark summary statistic.
		if prev, ok := run.Benchmarks[name]; !ok || met.NsPerOp < prev.NsPerOp {
			run.Benchmarks[name] = met
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if *check != "" {
		ref, err := loadReference(*check)
		if err != nil {
			fatal(err)
		}
		if err := checkRegression(run.Benchmarks, ref, *maxRegress); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark regressed beyond %.3g× of %s\n", *maxRegress, *check)
		return
	}

	var payload any = run
	if *baseline != "" {
		b, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base Run
		if err := json.Unmarshal(b, &base); err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *baseline, err))
		}
		rep := Report{Before: base.Benchmarks, After: run.Benchmarks, Speedup: map[string]float64{}, CPU: run.CPU}
		for name, after := range run.Benchmarks {
			if before, ok := base.Benchmarks[name]; ok && after.NsPerOp > 0 {
				rep.Speedup[name] = round3(before.NsPerOp / after.NsPerOp)
			}
		}
		payload = rep
	}

	enc, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)
}

// loadReference reads a committed reference file: a report's "after"
// section when present, else a flat run's "benchmarks".
func loadReference(path string) (map[string]Metrics, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err == nil && len(rep.After) > 0 {
		return rep.After, nil
	}
	var run Run
	if err := json.Unmarshal(b, &run); err != nil {
		return nil, fmt.Errorf("parsing reference %s: %w", path, err)
	}
	if len(run.Benchmarks) == 0 {
		return nil, fmt.Errorf("reference %s holds no benchmarks", path)
	}
	return run.Benchmarks, nil
}

// checkRegression fails when a benchmark present in both the current run
// and the reference exceeds maxRegress× the reference ns/op.  Benchmarks
// only on one side are reported but never fail the gate (new or retired
// benchmarks must not break CI).
func checkRegression(cur, ref map[string]Metrics, maxRegress float64) error {
	var bad []string
	for name, r := range ref {
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: reference benchmark %s not in current run (skipped)\n", name)
			continue
		}
		if r.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / r.NsPerOp
		fmt.Fprintf(os.Stderr, "benchjson: %-28s %10.0f ns/op vs reference %10.0f (%.2f×)\n", name, c.NsPerOp, r.NsPerOp, ratio)
		if ratio > maxRegress {
			// Print the offending row's full before/after metrics — when
			// the gate trips in CI, the log is all the debugging surface
			// anyone has.
			bad = append(bad, fmt.Sprintf(
				"%s: %.0f ns/op is %.1f× the reference %.0f (limit %.3g×)\n    current:   %10.0f ns/op %10.0f B/op %8.0f allocs/op\n    reference: %10.0f ns/op %10.0f B/op %8.0f allocs/op",
				name, c.NsPerOp, ratio, r.NsPerOp, maxRegress,
				c.NsPerOp, c.BPerOp, c.AllocsPerOp,
				r.NsPerOp, r.BPerOp, r.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
