module autoax

go 1.24
