package autoax_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"autoax"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow end to
// end through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	lib, err := autoax.BuildLibrary([]autoax.LibrarySpec{
		{Op: autoax.OpAdd(8), Count: 30},
		{Op: autoax.OpAdd(9), Count: 30},
		{Op: autoax.OpSub(10), Count: 25},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Size() == 0 {
		t.Fatal("empty library")
	}
	images := autoax.BenchmarkImages(2, 32, 24, 7)
	pipe, err := autoax.NewPipeline(autoax.Sobel(), lib, images, autoax.Config{
		TrainConfigs: 50, TestConfigs: 30, SearchEvals: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Run(); err != nil {
		t.Fatal(err)
	}
	cfgs, res := pipe.FrontResults()
	if len(cfgs) == 0 || len(cfgs) != len(res) {
		t.Fatalf("front: %d cfgs, %d results", len(cfgs), len(res))
	}
	for _, r := range res {
		if r.SSIM < -1 || r.SSIM > 1 || r.Area < 0 {
			t.Errorf("implausible result %+v", r)
		}
	}
}

// TestPublicAPILibraryRoundTrip saves and reloads a library through the
// facade.
func TestPublicAPILibraryRoundTrip(t *testing.T) {
	lib, err := autoax.BuildLibrary([]autoax.LibrarySpec{{Op: autoax.OpMul(4), Count: 10}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := lib.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := autoax.LoadLibrary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != lib.Size() {
		t.Fatalf("round trip size %d != %d", got.Size(), lib.Size())
	}
}

// TestPublicAPICustomGraph builds a custom accelerator via the facade and
// verifies precise evaluation of an exact configuration scores SSIM 1.
func TestPublicAPICustomGraph(t *testing.T) {
	g := autoax.NewGraph("double")
	a := g.Input("a", 8)
	sum := g.Add("add", 8, a, a)
	g.Output(g.Clamp("sat", sum, 8))
	app := &autoax.ImageApp{
		Name:  "double",
		Graph: g,
		Taps:  []autoax.WindowTap{{DX: 0, DY: 0}},
		Sims:  [][]uint64{{}},
	}
	lib, err := autoax.BuildLibrary([]autoax.LibrarySpec{{Op: autoax.OpAdd(8), Count: 15}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	images := autoax.BenchmarkImages(1, 16, 16, 3)
	ev, err := autoax.NewEvaluator(app, images)
	if err != nil {
		t.Fatal(err)
	}
	// Find an exact circuit in the library.
	var exact *autoax.Circuit
	for _, c := range lib.For(autoax.OpAdd(8)) {
		if c.IsExact() {
			exact = c
			break
		}
	}
	if exact == nil {
		t.Fatal("no exact adder in library")
	}
	res, err := ev.Evaluate(autoax.Configuration{exact})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SSIM-1) > 1e-12 {
		t.Errorf("exact custom accelerator SSIM = %f", res.SSIM)
	}
}

// TestPublicAPIEngines sanity-checks the engine registry and the fidelity
// helper exposure.
func TestPublicAPIEngines(t *testing.T) {
	if len(autoax.Engines()) != 13 {
		t.Errorf("got %d engines, want 13", len(autoax.Engines()))
	}
	if _, err := autoax.EngineByName("Random Forest"); err != nil {
		t.Error(err)
	}
	if f := autoax.Fidelity([]float64{1, 2, 3}, []float64{10, 20, 30}); f != 1 {
		t.Errorf("fidelity = %f", f)
	}
}

// TestPublicAPIServer drives the asynchronous job service through the
// facade: a library build submitted over HTTP, polled to completion, and
// content-addressed consistently with LibraryKey.
func TestPublicAPIServer(t *testing.T) {
	srv, err := autoax.NewServer(autoax.ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := autoax.ServerLibraryRequest{
		Specs: []autoax.ServerLibrarySpec{{Op: "mul4", Count: 8}},
		Seed:  3,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/libraries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var job autoax.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			r.Body.Close()
			t.Fatalf("poll: status %d", r.StatusCode)
		}
		err = json.NewDecoder(r.Body).Decode(&job)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if job.State != "succeeded" {
		t.Fatalf("job ended as %s: %s", job.State, job.Error)
	}
	var res struct {
		Key  string `json:"key"`
		Size int    `json:"size"`
	}
	if err := json.Unmarshal(job.Result, &res); err != nil {
		t.Fatal(err)
	}
	want := autoax.LibraryKey([]autoax.LibrarySpec{{Op: autoax.OpMul(4), Count: 8}}, 3)
	if res.Key != want {
		t.Errorf("server key %s, facade LibraryKey %s", res.Key, want)
	}
	if res.Size == 0 {
		t.Error("empty library built")
	}

	// Seed 0 is defaulted to 1 on the server; LibraryKey must agree.
	specs := []autoax.LibrarySpec{{Op: autoax.OpMul(4), Count: 8}}
	if autoax.LibraryKey(specs, 0) != autoax.LibraryKey(specs, 1) {
		t.Error("LibraryKey(seed 0) does not match the server's seed defaulting")
	}
}

// TestPublicAPIClientPipelineParity is the acceptance path of the
// first-class-accelerator API: a custom accelerator defined with
// autoax.NewGraph, serialized to JSON, submitted through the client SDK to
// /v1/pipelines, must return a Pareto front identical to the same graph
// run in-process.
func TestPublicAPIClientPipelineParity(t *testing.T) {
	const (
		libCount      = 12
		trainN, testN = 24, 12
		evalsN        = 1500
		stagnation    = 50
		seed          = int64(1)
	)
	g := autoax.NewGraph("halfsum")
	a := g.Input("a", 8)
	b := g.Input("b", 8)
	sum := g.Add("add", 8, a, b)                       // 9 bits
	diff := g.Sub("sub", 9, sum, g.ShiftL("a2", a, 1)) // 10 bits
	g.Output(g.Clamp("sat", g.Abs("abs", diff), 8))
	app := &autoax.ImageApp{
		Name:  "halfsum",
		Graph: g,
		Taps:  []autoax.WindowTap{{DX: 0, DY: 0}, {DX: 1, DY: 0}},
		Sims:  [][]uint64{{}},
	}

	// Serialize to JSON and back — the submitted accelerator is the
	// round-tripped artifact, exactly what a remote client would send.
	wire, err := app.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	var wireApp autoax.WireApp
	if err := json.Unmarshal(wire, &wireApp); err != nil {
		t.Fatal(err)
	}

	// In-process run.
	specs := []autoax.LibrarySpec{
		{Op: autoax.OpAdd(8), Count: libCount},
		{Op: autoax.OpSub(9), Count: libCount},
	}
	lib, err := autoax.BuildLibrary(specs, seed)
	if err != nil {
		t.Fatal(err)
	}
	images := autoax.BenchmarkImages(2, 32, 24, seed+1000)
	pipe, err := autoax.NewPipeline(app, lib, images, autoax.Config{
		TrainConfigs: trainN, TestConfigs: testN,
		SearchEvals: evalsN, Stagnation: stagnation, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Run(); err != nil {
		t.Fatal(err)
	}
	_, localRes := pipe.FrontResults()

	// The same run through the service, driven by the client SDK.
	srv, err := autoax.NewServer(autoax.ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := autoax.NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	job, err := client.SubmitPipeline(ctx, autoax.ServerPipelineRequest{
		Accelerator: &wireApp,
		Library: autoax.ServerLibraryRequest{
			Specs: []autoax.ServerLibrarySpec{
				{Op: "add8", Count: libCount},
				{Op: "sub9", Count: libCount},
			},
			Seed: seed,
		},
		Images:       autoax.ImageSpec{Count: 2, Width: 32, Height: 24, Seed: seed + 1000},
		TrainConfigs: trainN, TestConfigs: testN,
		SearchEvals: evalsN, Stagnation: stagnation, Seed: seed,
	})
	if err != nil {
		t.Fatalf("SubmitPipeline: %v", err)
	}
	done, err := client.Jobs.Wait(ctx, job.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	remote, err := autoax.PipelineResultOf(done)
	if err != nil {
		t.Fatalf("decode: %v (job error %q)", err, done.Error)
	}

	if len(remote.Front) != len(localRes) {
		t.Fatalf("front size: service %d vs in-process %d", len(remote.Front), len(localRes))
	}
	for i, f := range remote.Front {
		if f.SSIM != localRes[i].SSIM || f.Area != localRes[i].Area || f.Energy != localRes[i].Energy {
			t.Errorf("front entry %d differs: service %+v vs in-process %+v", i, f, localRes[i])
		}
	}
}

// TestPublicAPIFleet exercises the distributed-search surface through the
// facade: the partition/merge/seed-derivation helpers and the protocol
// version, plus the adapter types wiring a Client into a coordinator.
func TestPublicAPIFleet(t *testing.T) {
	specs, err := autoax.FleetPartition(autoax.FleetShardSpec{
		LibraryHash: "lib-hash",
		Engine:      "hillclimb",
		Seed:        7,
		Evaluations: 1000,
	}, 4)
	if err != nil {
		t.Fatalf("FleetPartition: %v", err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d shards, want 4", len(specs))
	}
	total := 0
	for i, sp := range specs {
		total += sp.Evaluations
		want := autoax.DeriveSearchSeed("hillclimb", "fleet/shard/"+string(rune('0'+i)), 7)
		if sp.Seed != want {
			t.Errorf("shard %d seed %d, want the derived stream seed %d", i, sp.Seed, want)
		}
	}
	if total != 1000 {
		t.Fatalf("partition sums to %d evaluations, want 1000", total)
	}
	if autoax.FleetProtocolVersion < 1 {
		t.Fatalf("implausible fleet protocol version %d", autoax.FleetProtocolVersion)
	}

	// The remote adapter satisfies the worker seam the coordinator takes.
	var _ autoax.FleetWorker = &autoax.FleetShardWorker{Client: autoax.NewClient("http://localhost:0")}
	var _ autoax.FleetWorker = &autoax.FleetLocalWorker{}

	// Merging shard results in slice order is deterministic and pure.
	merged := autoax.FleetMerge([]*autoax.FleetShardResult{
		{Points: []autoax.FleetShardPoint{
			{Point: []float64{-0.9, 100}, Config: []int{1, 2}},
			{Point: []float64{-0.5, 50}, Config: []int{0, 0}},
		}},
		nil,
		{Points: []autoax.FleetShardPoint{
			{Point: []float64{-0.9, 100}, Config: []int{3, 4}}, // duplicate point: first insert wins
		}},
	})
	if merged.Len() != 2 {
		t.Fatalf("merged archive has %d points, want 2", merged.Len())
	}
	for _, cfg := range merged.Payloads() {
		if len(cfg) == 2 && cfg[0] == 3 && cfg[1] == 4 {
			t.Fatal("equal-point tie must keep the first-inserted configuration")
		}
	}
}
