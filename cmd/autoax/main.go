// Command autoax regenerates the tables and figures of the autoAx paper
// (Mrazek et al., DAC 2019) and provides library-management utilities.
//
// Usage:
//
//	autoax [flags] <command>
//
// Commands:
//
//	table1 table2 table3 table4 table5   one table each
//	figure3 figure4 figure5              one figure each
//	all                                  everything, paper order
//	library                              build the component library and
//	                                     save it to -lib
//	pipeline <app>                       run the methodology on one app
//	                                     (sobel, fixedgf, genericgf — or a
//	                                     custom accelerator via -graph) and
//	                                     print its final Pareto front
//	submit                               submit a pipeline to a running
//	                                     `autoax serve` through the client
//	                                     SDK and wait for the result
//	search                               run a distributed model-based
//	                                     search over a fleet of `autoax
//	                                     serve` workers (-fleet host1,host2)
//	serve                                run the asynchronous HTTP job
//	                                     service (see internal/axserver)
//	version                              print the version
//
// Flags:
//
//	-scale tiny|small|paper   experiment size (default small)
//	-seed N                   master random seed (default 1)
//	-out DIR                  CSV output directory (default results)
//	-lib FILE                 library JSON path for the library command
//	-graph FILE               wire-format accelerator JSON; replaces the
//	                          app name for pipeline and submit
//	-parallel N               precise-evaluation workers (default 0 = all
//	                          cores; results are identical at any setting)
//	-engine NAME              search engine for the model-based DSE step
//	                          (hillclimb, nsga2, random; default hillclimb)
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"path/filepath"

	"autoax/axclient"
	"autoax/internal/accel"
	"autoax/internal/acl"
	"autoax/internal/apps"
	"autoax/internal/axserver"
	"autoax/internal/core"
	"autoax/internal/dse"
	"autoax/internal/expt"
	"autoax/internal/fleet"
	"autoax/internal/imagedata"
	"autoax/internal/obs"
)

// version identifies the build for the version subcommand.
const version = "0.2.0"

func main() {
	scale := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	seed := flag.Int64("seed", 1, "master random seed")
	out := flag.String("out", "results", "CSV output directory (empty to disable)")
	libPath := flag.String("lib", "library.json", "library file for the library command")
	graphPath := flag.String("graph", "", "wire-format accelerator JSON file (pipeline and submit)")
	parallel := flag.Int("parallel", 0, "precise-evaluation workers (0 = all cores, 1 = sequential; results are identical)")
	engine := flag.String("engine", "", "search engine for the model-based DSE step (hillclimb, nsga2, random; empty = hillclimb)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	if *parallel < 0 {
		fatal(fmt.Errorf("-parallel must be non-negative, got %d", *parallel))
	}
	sc, err := expt.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	// -graph selects the accelerator for pipeline and submit only; anywhere
	// else it would be silently ignored, so reject it loudly instead.
	if cmd := flag.Arg(0); *graphPath != "" && cmd != "pipeline" && cmd != "submit" && cmd != "search" {
		fatal(fmt.Errorf("-graph applies to the pipeline, submit and search commands, not %q", cmd))
	}
	// -engine is validated up front against the registry so a typo fails
	// before any expensive library build.
	if _, err := dse.SearchEngineByName(*engine); err != nil {
		fatal(err)
	}
	s := expt.Setup{Scale: sc, Seed: *seed, OutDir: *out, Parallelism: *parallel, SearchEngine: *engine}
	w := os.Stdout

	start := time.Now()
	switch cmd := flag.Arg(0); cmd {
	case "table1":
		err = expt.Table1(w, s)
	case "table2":
		err = expt.Table2(w, s)
	case "table3":
		err = expt.Table3(w, s)
	case "table4":
		err = expt.Table4(w, s)
	case "table5":
		err = expt.Table5(w, s)
	case "figure3":
		err = expt.Figure3(w, s)
	case "figure4":
		err = expt.Figure4(w, s)
	case "figure5":
		err = expt.Figure5(w, s)
	case "ablation":
		if err = expt.AblationQoRFeatures(w, s); err == nil {
			if err = expt.AblationHWFeatures(w, s); err == nil {
				if err = expt.AblationStagnation(w, s); err == nil {
					err = expt.AblationEngines(w, s)
				}
			}
		}
	case "all":
		err = expt.RunAll(w, s)
	case "library":
		var lib interface {
			SaveFile(string) error
			Size() int
		}
		lib, err = s.Library()
		if err == nil {
			err = lib.SaveFile(*libPath)
			if err == nil {
				fmt.Fprintf(w, "library with %d circuits written to %s\n", lib.Size(), *libPath)
			}
		}
	case "pipeline":
		switch {
		case *graphPath != "" && flag.NArg() >= 2:
			fatal(fmt.Errorf("pipeline takes an app name or -graph FILE, not both"))
		case *graphPath != "":
			err = runPipelineGraph(s, *graphPath)
		case flag.NArg() >= 2:
			err = runPipeline(s, flag.Arg(1))
		default:
			fatal(fmt.Errorf("pipeline needs an app name (sobel, fixedgf, genericgf) or -graph FILE"))
		}
	case "submit":
		err = runSubmit(s, *graphPath, flag.Args()[1:])
	case "search":
		err = runSearch(s, *graphPath, flag.Args()[1:])
	case "export":
		if flag.NArg() < 2 {
			fatal(fmt.Errorf("export needs an operation instance (e.g. add8, mul8)"))
		}
		err = runExport(s, flag.Arg(1), *out)
	case "serve":
		err = runServe(flag.Args()[1:])
	case "version":
		fmt.Printf("autoax %s\n", version)
		return
	default:
		fmt.Fprintf(os.Stderr, "autoax: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}

// runServe starts the asynchronous job service and blocks until SIGINT or
// SIGTERM, then drains in-flight HTTP exchanges and cancels running jobs.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "directory for the content-addressed artifact cache (empty = memory only)")
	evalParallel := fs.Int("eval-parallel", 0, "default per-job precise-evaluation workers for requests that leave parallelism unset (0 = divide cores across the worker pool)")
	cacheMemMB := fs.Int64("cache-mem-mb", 0, "in-memory artifact cache budget in MiB; LRU entries are evicted beyond it (0 = unbounded)")
	cacheDiskMB := fs.Int64("cache-disk-mb", 0, "on-disk artifact cache budget in MiB; least-recently-used files are deleted beyond it (0 = unbounded; needs -cache-dir)")
	cacheDiskTTL := fs.Duration("cache-disk-ttl", 0, "on-disk artifact expiry: cache files idle longer than this are deleted (0 = never; needs -cache-dir)")
	progCacheDir := fs.String("progcache-dir", "", "directory persisting compiled accelerator programs across restarts (empty = memory only)")
	progCacheMB := fs.Int64("progcache-mb", 0, "compiled-program directory budget in MiB; least-recently-used entries are deleted beyond it (0 = default 256 MiB; needs -progcache-dir)")
	progCacheTTL := fs.Duration("progcache-ttl", 0, "compiled-program expiry: entries idle longer than this are deleted (0 = never; needs -progcache-dir)")
	journalDir := fs.String("journal-dir", "", "directory for the write-ahead job journal: accepted jobs survive a crash and replay on restart under their original IDs (empty = jobs die with the process)")
	maxQueue := fs.Int("max-queue", 0, "admission bound on queued jobs; past it submissions get 429 queue_full with Retry-After (0 = unbounded)")
	maxQueueMB := fs.Int64("max-queue-mb", 0, "admission byte budget in MiB for queued request payloads (0 = unbounded)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT, how long to let in-flight jobs finish before cancelling them (queued jobs persist in the journal either way)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060; empty = disabled)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	srv, err := axserver.New(axserver.Options{
		Workers:         *workers,
		CacheDir:        *cacheDir,
		EvalParallelism: *evalParallel,
		MemCacheBytes:   *cacheMemMB << 20,
		DiskCacheBytes:  *cacheDiskMB << 20,
		DiskCacheTTL:    *cacheDiskTTL,
		ProgramCacheDir: *progCacheDir,
		// 0 MiB keeps the package default (accel.DefaultProgramDiskBytes).
		ProgramCacheBytes: *progCacheMB << 20,
		ProgramCacheTTL:   *progCacheTTL,
		JournalDir:        *journalDir,
		MaxQueue:          *maxQueue,
		MaxQueueBytes:     *maxQueueMB << 20,
		Logger:            logger,
	})
	if err != nil {
		return err
	}

	// The profiling endpoint listens on its own address and mux so the
	// job API never exposes pprof, and only when explicitly requested.
	// The same listener carries expvar (/debug/vars), with the metric
	// registry published under "autoax_metrics".
	if *pprofAddr != "" {
		obs.PublishExpvar()
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: mux}
		defer pprofSrv.Close()
		go func() {
			logger.Info("pprof.start", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof.error", "error", err.Error())
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("server.start", "addr", *addr, "workers", srv.Stats().Workers)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Restore default signal handling immediately so a second SIGINT/
	// SIGTERM force-quits instead of being swallowed during the drain.
	stop()
	logger.Info("server.shutdown", "drain_timeout", drainTimeout.String())
	// Drain-then-stop: reject new work (healthz flips to "draining") but
	// keep the HTTP listener up so pollers and the drain itself can
	// finish; in-flight jobs get drain-timeout to complete before the
	// base context cancels them.  Queued and cancelled-by-shutdown jobs
	// persist in the journal and replay on the next boot.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("server.drain", "error", err.Error())
	}
	cancelDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	srv.Close() // cancels whatever outlived the drain, waits for the workers
	if err := <-errCh; err != nil {
		return err
	}
	return shutdownErr
}

// buildLogger constructs the serve logger writing structured events to
// stderr in the requested format.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
}

func runPipeline(s expt.Setup, app string) error {
	pipe, err := s.Pipeline(app)
	if err != nil {
		return err
	}
	printPipeline(app, pipe)
	return nil
}

// printPipeline reports a finished methodology run.
func printPipeline(app string, pipe *core.Pipeline) {
	fmt.Printf("app %s: reduced space %.3g configurations, model fidelity QoR %.0f%% / HW %.0f%%\n",
		app, pipe.Space.NumConfigs(), 100*pipe.QoRFidelity, 100*pipe.HWFidelity)
	fmt.Printf("pseudo Pareto %d configurations → final front %d\n", pipe.Pseudo.Len(), len(pipe.FinalFront))
	cfgs, res := pipe.FrontResults()
	fmt.Println("  SSIM     area(µm²)  energy(fJ)  configuration")
	for i, r := range res {
		fmt.Printf("  %.5f  %9.1f  %10.1f  %v\n", r.SSIM, r.Area, r.Energy, cfgs[i])
	}
}

// customBudgets are the per-scale knobs used when the accelerator comes
// from a -graph file instead of a named case study (which keep their
// paper-calibrated budgets in internal/expt).
type customBudgets struct {
	libCount           int // circuits per operation instance
	train, test, evals int
	imgN, imgW, imgH   int
}

func budgetsFor(sc expt.Scale) customBudgets {
	switch sc {
	case expt.ScaleTiny:
		return customBudgets{libCount: 8, train: 24, test: 12, evals: 2000, imgN: 2, imgW: 32, imgH: 24}
	case expt.ScalePaper:
		return customBudgets{libCount: 300, train: 1500, test: 1500, evals: 100000, imgN: 8, imgW: 128, imgH: 96}
	default: // small
		return customBudgets{libCount: 60, train: 150, test: 100, evals: 10000, imgN: 3, imgW: 64, imgH: 48}
	}
}

// loadGraphApp reads and validates a wire-format accelerator file.
func loadGraphApp(path string) (*accel.ImageApp, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	app, err := accel.ParseAppJSON(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return app, nil
}

// opCountsSorted returns the app's distinct operation instances in a
// deterministic (name-sorted) order — map iteration order must not leak
// into library specs, which are content-hashed.
func opCountsSorted(app *accel.ImageApp) []acl.Op {
	counts := app.Graph.OpCounts()
	ops := make([]acl.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	return ops
}

// runPipelineGraph runs the full methodology on a custom accelerator from
// a wire-format file: a library matching its operation mix is built
// locally, then the standard three steps run in-process.
func runPipelineGraph(s expt.Setup, path string) error {
	app, err := loadGraphApp(path)
	if err != nil {
		return err
	}
	b := budgetsFor(s.Scale)
	specs := make([]acl.BuildSpec, 0)
	for _, op := range opCountsSorted(app) {
		specs = append(specs, acl.BuildSpec{Op: op, Count: b.libCount})
	}
	fmt.Printf("custom accelerator %s: %d operations over %d instance types\n",
		app.Name, len(app.Graph.OpNodes()), len(specs))
	lib, err := acl.Build(specs, s.Seed, acl.Options{Seed: s.Seed})
	if err != nil {
		return err
	}
	images := imagedata.BenchmarkSet(b.imgN, b.imgW, b.imgH, s.Seed+1000)
	pipe, err := core.NewPipeline(app, lib, images, core.Config{
		TrainConfigs: b.train,
		TestConfigs:  b.test,
		SearchEvals:  b.evals,
		Parallelism:  s.Parallelism,
		Seed:         s.Seed,
		SearchEngine: s.SearchEngine,
	})
	if err != nil {
		return err
	}
	if err := pipe.Run(); err != nil {
		return err
	}
	printPipeline(app.Name, pipe)
	return nil
}

// materializeApp resolves the -graph/-app pair into the accelerator and
// its wire addressing — a built-in name, or an inline wire-format graph.
// Exactly one of the two must be given.
func materializeApp(graphPath, appName string) (app *accel.ImageApp, name string, wire *accel.WireApp, err error) {
	switch {
	case graphPath != "" && appName != "":
		return nil, "", nil, fmt.Errorf("takes -graph or -app, not both")
	case graphPath != "":
		app, err = loadGraphApp(graphPath)
		if err != nil {
			return nil, "", nil, err
		}
		wire, err = app.Wire()
		if err != nil {
			return nil, "", nil, err
		}
		return app, "", wire, nil
	case appName != "":
		switch appName {
		case "sobel":
			app = apps.Sobel()
		case "fixedgf":
			app = apps.FixedGF()
		case "genericgf":
			app = apps.GenericGF(apps.GenericGFKernels(2))
		default:
			return nil, "", nil, fmt.Errorf("got unknown app %q (want sobel, fixedgf or genericgf)", appName)
		}
		return app, appName, nil, nil
	default:
		return nil, "", nil, fmt.Errorf("needs -app NAME or the global -graph FILE")
	}
}

// runSubmit drives a remote `autoax serve` through the client SDK: it
// submits one pipeline job — for a named app or a -graph accelerator —
// waits for the terminal state with backoff polling, and prints the front.
func runSubmit(s expt.Setup, graphPath string, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the job service")
	appName := fs.String("app", "", "built-in app name (sobel, fixedgf, genericgf)")
	timeout := fs.Duration("timeout", 30*time.Minute, "overall submit+wait deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	b := budgetsFor(s.Scale)
	req := axserver.PipelineRequest{
		Images:       axserver.ImageSpec{Count: b.imgN, Width: b.imgW, Height: b.imgH, Seed: s.Seed + 1000},
		TrainConfigs: b.train,
		TestConfigs:  b.test,
		SearchEvals:  b.evals,
		Seed:         s.Seed,
		Parallelism:  s.Parallelism,
		Search:       axserver.SearchSpec{Engine: s.SearchEngine},
	}
	// The library request must cover the accelerator's operation mix, so
	// the app is materialized locally either way to derive the specs.
	app, name, wire, err := materializeApp(graphPath, *appName)
	if err != nil {
		return fmt.Errorf("submit %w", err)
	}
	req.App, req.Accelerator = name, wire
	for _, op := range opCountsSorted(app) {
		req.Library.Specs = append(req.Library.Specs, axserver.SpecRequest{Op: op.String(), Count: b.libCount})
	}
	req.Library.Seed = s.Seed

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := axclient.New(*addr)
	job, err := c.SubmitPipeline(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s to %s (accelerator %s)\n", job.ID, *addr, app.Name)
	// Surface the server-side stage progress while waiting: one line per
	// observed change ("explore: 3400/5000").  Old servers simply report
	// no stage, so nothing is printed.
	var lastStage string
	var lastDone int64
	done, err := c.Jobs.WaitProgress(ctx, job.ID, func(info axserver.JobInfo) {
		if info.Stage == "" || (info.Stage == lastStage && info.Progress == lastDone) {
			return
		}
		lastStage, lastDone = info.Stage, info.Progress
		fmt.Fprintf(os.Stderr, "  %s: %d/%d\n", info.Stage, info.Progress, info.ProgressTotal)
	})
	if err != nil {
		return err
	}
	res, err := axclient.PipelineResultOf(done)
	if err != nil {
		return err
	}
	served := "computed"
	if done.Cached {
		served = "served from cache"
	}
	fmt.Printf("job %s %s in %s (%s)\n", done.ID, done.State, done.Ended.Sub(done.Started).Round(time.Millisecond), served)
	fmt.Printf("reduced space %.3g configurations, fidelity QoR %.0f%% / HW %.0f%%, engine %s, search %s\n",
		res.SpaceConfigs, 100*res.QoRFidelity, 100*res.HWFidelity, res.Engine, res.SearchEngine)
	fmt.Println("  SSIM     area(µm²)  energy(fJ)  configuration")
	for _, f := range res.Front {
		fmt.Printf("  %.5f  %9.1f  %10.1f  %v\n", f.SSIM, f.Area, f.Energy, f.Config)
	}
	return nil
}

// runSearch drives a distributed model-based search over a fleet of
// `autoax serve` workers (the seed-wire protocol of internal/fleet): it
// verifies each worker's shard capability, warms every content-addressed
// library cache, partitions the evaluation budget into seed-derived
// shards, and merges the shard archives into one pseudo Pareto front —
// bit-identical to a single-process run over the same partition, however
// the shards land on workers.
func runSearch(s expt.Setup, graphPath string, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	fleetHosts := fs.String("fleet", "", "comma-separated base URLs of running `autoax serve` workers (required)")
	appName := fs.String("app", "", "built-in app name (sobel, fixedgf, genericgf)")
	shards := fs.Int("shards", 0, "number of shards to partition the budget into (0 = two per worker)")
	timeout := fs.Duration("timeout", 30*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var hosts []string
	for _, h := range strings.Split(*fleetHosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		return fmt.Errorf("search needs -fleet host1,host2 (base URLs of running autoax serve workers)")
	}
	if *shards == 0 {
		*shards = 2 * len(hosts)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}

	app, name, wire, err := materializeApp(graphPath, *appName)
	if err != nil {
		return fmt.Errorf("search %w", err)
	}
	b := budgetsFor(s.Scale)
	libReq := axserver.LibraryRequest{Seed: s.Seed}
	for _, op := range opCountsSorted(app) {
		libReq.Specs = append(libReq.Specs, axserver.SpecRequest{Op: op.String(), Count: b.libCount})
	}
	// The shared model context every shard carries: workers with the same
	// context rebuild bit-identical estimators (see axserver.shardModels).
	shared := axserver.SearchShardRequest{
		App:          name,
		Accelerator:  wire,
		Images:       axserver.ImageSpec{Count: b.imgN, Width: b.imgW, Height: b.imgH, Seed: s.Seed + 1000},
		TrainConfigs: b.train,
		TestConfigs:  b.test,
		Seed:         s.Seed,
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Ready every worker: capability check, then a library build that warms
	// its content-addressed cache (a cache hit on workers that already hold
	// it).  All workers must agree on the canonical hash.
	workers := make([]fleet.Worker, 0, len(hosts))
	var libHash string
	for _, h := range hosts {
		c := axclient.New(h)
		v, err := c.ShardCapability(ctx)
		if err != nil {
			return fmt.Errorf("worker %s: %w", h, err)
		}
		if v != fleet.ProtocolVersion {
			return fmt.Errorf("worker %s speaks shard protocol %d, this client needs %d", h, v, fleet.ProtocolVersion)
		}
		job, err := c.SubmitLibrary(ctx, libReq)
		if err != nil {
			return fmt.Errorf("worker %s: %w", h, err)
		}
		done, err := c.Jobs.Wait(ctx, job.ID)
		if err != nil {
			return fmt.Errorf("worker %s: %w", h, err)
		}
		res, err := axclient.LibraryResultOf(done)
		if err != nil {
			return fmt.Errorf("worker %s: %w", h, err)
		}
		if libHash == "" {
			libHash = res.Key
		} else if libHash != res.Key {
			return fmt.Errorf("workers disagree on the canonical library hash: %s vs %s", libHash, res.Key)
		}
		fmt.Fprintf(os.Stderr, "worker %s ready (library %s)\n", h, res.Key)
		workers = append(workers, &axclient.ShardWorker{Client: c, Context: shared})
	}

	specs, err := fleet.Partition(fleet.ShardSpec{
		LibraryHash: libHash,
		Engine:      s.SearchEngine,
		Seed:        s.Seed,
		Evaluations: b.evals,
	}, *shards)
	if err != nil {
		return err
	}

	coord := &fleet.Coordinator{Workers: workers}
	begin := time.Now()
	arch, stats, err := coord.Search(ctx, specs)
	if err != nil {
		return err
	}
	fmt.Printf("fleet of %d workers ran %d shards (%d evaluations) in %s: %d dispatched, %d retried, %d reissued\n",
		len(workers), stats.Shards, b.evals, time.Since(begin).Round(time.Millisecond),
		stats.Dispatched, stats.Retried, stats.Reissued)
	pts, cfgs := arch.Points(), arch.Payloads()
	fmt.Printf("merged pseudo Pareto front: %d configurations\n", arch.Len())
	fmt.Println("  QoR(est)  HW(est)     configuration")
	for i := range pts {
		fmt.Printf("  %.5f  %10.1f  %v\n", -pts[i][0], pts[i][1], cfgs[i])
	}
	return nil
}

func runExport(s expt.Setup, opName, outDir string) error {
	op, err := acl.ParseOp(opName)
	if err != nil {
		return err
	}
	lib, err := s.Library()
	if err != nil {
		return err
	}
	circuits := lib.For(op)
	if len(circuits) == 0 {
		return fmt.Errorf("library has no %s circuits", op)
	}
	dir := filepath.Join(outDir, "verilog", op.String())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range circuits {
		path := filepath.Join(dir, fileSafe(c.Name)+".v")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = c.Netlist.WriteVerilog(f, "")
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d Verilog modules to %s\n", len(circuits), dir)
	return nil
}

// fileSafe reduces a circuit name to a portable file name.
func fileSafe(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func usage() {
	fmt.Fprintf(os.Stderr, `autoax — reproduction of the autoAx DAC'19 methodology

usage: autoax [flags] <command>

commands:
  table1 table2 table3 table4 table5    regenerate one paper table
  figure3 figure4 figure5               regenerate one paper figure
  ablation                              feature/threshold ablation studies
  all                                   everything in paper order
  library                               build + save the component library
  pipeline <sobel|fixedgf|genericgf>    run the methodology on one app; with
                                        the global -graph FILE flag, run it
                                        on a custom wire-format accelerator
  submit [-addr URL] [-app NAME] [-timeout D]
                                        submit a pipeline job to a running
                                        "autoax serve" via the client SDK
                                        and wait (combine with -graph FILE
                                        for custom accelerators)
  search -fleet host1,host2 [-app NAME] [-shards N] [-timeout D]
                                        distribute one model-based search
                                        across a fleet of "autoax serve"
                                        workers and print the merged front
                                        (combine with -graph FILE for
                                        custom accelerators)
  export <op>                           write the op's library circuits as
                                        structural Verilog (e.g. export mul8)
  serve [-addr :8080] [-workers N] [-cache-dir DIR] [-cache-mem-mb N]
        [-cache-disk-mb N] [-cache-disk-ttl D] [-progcache-dir DIR]
        [-progcache-mb N] [-progcache-ttl D] [-eval-parallel N]
        [-journal-dir DIR] [-max-queue N] [-max-queue-mb N]
        [-drain-timeout D] [-pprof ADDR] [-log-level L]
        [-log-format text|json]
                                        run the asynchronous HTTP job service
  version                               print the version

flags:
`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autoax:", err)
	os.Exit(1)
}
