// Command autoax regenerates the tables and figures of the autoAx paper
// (Mrazek et al., DAC 2019) and provides library-management utilities.
//
// Usage:
//
//	autoax [flags] <command>
//
// Commands:
//
//	table1 table2 table3 table4 table5   one table each
//	figure3 figure4 figure5              one figure each
//	all                                  everything, paper order
//	library                              build the component library and
//	                                     save it to -lib
//	pipeline <app>                       run the methodology on one app
//	                                     (sobel, fixedgf, genericgf) and
//	                                     print its final Pareto front
//	serve                                run the asynchronous HTTP job
//	                                     service (see internal/axserver)
//	version                              print the version
//
// Flags:
//
//	-scale tiny|small|paper   experiment size (default small)
//	-seed N                   master random seed (default 1)
//	-out DIR                  CSV output directory (default results)
//	-lib FILE                 library JSON path for the library command
//	-parallel N               precise-evaluation workers (default 0 = all
//	                          cores; results are identical at any setting)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"path/filepath"

	"autoax/internal/acl"
	"autoax/internal/axserver"
	"autoax/internal/expt"
)

// version identifies the build for the version subcommand.
const version = "0.2.0"

func main() {
	scale := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	seed := flag.Int64("seed", 1, "master random seed")
	out := flag.String("out", "results", "CSV output directory (empty to disable)")
	libPath := flag.String("lib", "library.json", "library file for the library command")
	parallel := flag.Int("parallel", 0, "precise-evaluation workers (0 = all cores, 1 = sequential; results are identical)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	if *parallel < 0 {
		fatal(fmt.Errorf("-parallel must be non-negative, got %d", *parallel))
	}
	sc, err := expt.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	s := expt.Setup{Scale: sc, Seed: *seed, OutDir: *out, Parallelism: *parallel}
	w := os.Stdout

	start := time.Now()
	switch cmd := flag.Arg(0); cmd {
	case "table1":
		err = expt.Table1(w, s)
	case "table2":
		err = expt.Table2(w, s)
	case "table3":
		err = expt.Table3(w, s)
	case "table4":
		err = expt.Table4(w, s)
	case "table5":
		err = expt.Table5(w, s)
	case "figure3":
		err = expt.Figure3(w, s)
	case "figure4":
		err = expt.Figure4(w, s)
	case "figure5":
		err = expt.Figure5(w, s)
	case "ablation":
		if err = expt.AblationQoRFeatures(w, s); err == nil {
			if err = expt.AblationHWFeatures(w, s); err == nil {
				err = expt.AblationStagnation(w, s)
			}
		}
	case "all":
		err = expt.RunAll(w, s)
	case "library":
		var lib interface {
			SaveFile(string) error
			Size() int
		}
		lib, err = s.Library()
		if err == nil {
			err = lib.SaveFile(*libPath)
			if err == nil {
				fmt.Fprintf(w, "library with %d circuits written to %s\n", lib.Size(), *libPath)
			}
		}
	case "pipeline":
		if flag.NArg() < 2 {
			fatal(fmt.Errorf("pipeline needs an app name (sobel, fixedgf, genericgf)"))
		}
		err = runPipeline(s, flag.Arg(1))
	case "export":
		if flag.NArg() < 2 {
			fatal(fmt.Errorf("export needs an operation instance (e.g. add8, mul8)"))
		}
		err = runExport(s, flag.Arg(1), *out)
	case "serve":
		err = runServe(flag.Args()[1:])
	case "version":
		fmt.Printf("autoax %s\n", version)
		return
	default:
		fmt.Fprintf(os.Stderr, "autoax: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}

// runServe starts the asynchronous job service and blocks until SIGINT or
// SIGTERM, then drains in-flight HTTP exchanges and cancels running jobs.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "directory for the content-addressed artifact cache (empty = memory only)")
	evalParallel := fs.Int("eval-parallel", 0, "default per-job precise-evaluation workers for requests that leave parallelism unset (0 = divide cores across the worker pool)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := axserver.New(axserver.Options{Workers: *workers, CacheDir: *cacheDir, EvalParallelism: *evalParallel})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "autoax serve: listening on %s (workers %d)\n", *addr, srv.Stats().Workers)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Restore default signal handling immediately so a second SIGINT/
	// SIGTERM force-quits instead of being swallowed during the drain.
	stop()
	fmt.Fprintln(os.Stderr, "autoax serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	srv.Close() // cancels running jobs, waits for the workers
	if err := <-errCh; err != nil {
		return err
	}
	return shutdownErr
}

func runPipeline(s expt.Setup, app string) error {
	pipe, err := s.Pipeline(app)
	if err != nil {
		return err
	}
	fmt.Printf("app %s: reduced space %.3g configurations, model fidelity QoR %.0f%% / HW %.0f%%\n",
		app, pipe.Space.NumConfigs(), 100*pipe.QoRFidelity, 100*pipe.HWFidelity)
	fmt.Printf("pseudo Pareto %d configurations → final front %d\n", pipe.Pseudo.Len(), len(pipe.FinalFront))
	cfgs, res := pipe.FrontResults()
	fmt.Println("  SSIM     area(µm²)  energy(fJ)  configuration")
	for i, r := range res {
		fmt.Printf("  %.5f  %9.1f  %10.1f  %v\n", r.SSIM, r.Area, r.Energy, cfgs[i])
	}
	return nil
}

func runExport(s expt.Setup, opName, outDir string) error {
	op, err := acl.ParseOp(opName)
	if err != nil {
		return err
	}
	lib, err := s.Library()
	if err != nil {
		return err
	}
	circuits := lib.For(op)
	if len(circuits) == 0 {
		return fmt.Errorf("library has no %s circuits", op)
	}
	dir := filepath.Join(outDir, "verilog", op.String())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range circuits {
		path := filepath.Join(dir, fileSafe(c.Name)+".v")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = c.Netlist.WriteVerilog(f, "")
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d Verilog modules to %s\n", len(circuits), dir)
	return nil
}

// fileSafe reduces a circuit name to a portable file name.
func fileSafe(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func usage() {
	fmt.Fprintf(os.Stderr, `autoax — reproduction of the autoAx DAC'19 methodology

usage: autoax [flags] <command>

commands:
  table1 table2 table3 table4 table5    regenerate one paper table
  figure3 figure4 figure5               regenerate one paper figure
  ablation                              feature/threshold ablation studies
  all                                   everything in paper order
  library                               build + save the component library
  pipeline <sobel|fixedgf|genericgf>    run the methodology on one app
  export <op>                           write the op's library circuits as
                                        structural Verilog (e.g. export mul8)
  serve [-addr :8080] [-workers N] [-cache-dir DIR] [-eval-parallel N]
                                        run the asynchronous HTTP job service
  version                               print the version

flags:
`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autoax:", err)
	os.Exit(1)
}
